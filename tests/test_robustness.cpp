// Crash-safety and fault-tolerance tests: atomic writes, checksummed
// result-cache entries (corruption -> quarantine -> recompute), failure
// isolation + retries in run_sweep, incremental CSV output, and
// killed-then-restarted sweeps resuming with zero recomputation. Every
// failure path is driven deterministically through the SB_FAULT-style
// injection hooks (obs::set_fault_spec / obs::fault_point).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "data/loader.hpp"
#include "models/zoo.hpp"
#include "nn/checkpoint.hpp"
#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "obs/io.hpp"
#include "obs/log.hpp"
#include "obs/profile.hpp"
#include "tensor/gemm.hpp"

namespace shrinkbench {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

size_t count_files_with(const fs::path& dir, const std::string& needle) {
  size_t n = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    n += entry.path().filename().string().find(needle) != std::string::npos;
  }
  return n;
}

// Cheapest possible end-to-end experiment: accuracy values are never
// asserted, only determinism and cache behavior.
ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.dataset = "synth-mnist";
  cfg.arch = "lenet-300-100";
  cfg.strategy = "global-weight";
  cfg.target_compression = 2.0;
  cfg.pretrain.epochs = 2;
  cfg.pretrain.batch_size = 64;
  cfg.pretrain.patience = 0;
  cfg.finetune.epochs = 1;
  cfg.finetune.patience = 0;
  return cfg;
}

struct RobustnessFixture : ::testing::Test {
  std::string cache_dir;
  std::string out_dir;
  std::unique_ptr<ExperimentRunner> runner;

  void SetUp() override {
    cache_dir = ::testing::TempDir() + "/sb_robust_cache";
    out_dir = ::testing::TempDir() + "/sb_robust_out";
    fs::remove_all(cache_dir);
    fs::remove_all(out_dir);
    obs::set_fault_spec("");
    clear_sweep_interrupt();
    runner = std::make_unique<ExperimentRunner>(cache_dir);
  }
  void TearDown() override {
    obs::set_fault_spec("");
    clear_sweep_interrupt();
    fs::remove_all(cache_dir);
    fs::remove_all(out_dir);
  }

  fs::path result_entry() const {
    const fs::path dir = fs::path(cache_dir) / "results";
    if (fs::exists(dir)) {
      for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".result") return entry.path();
      }
    }
    return {};
  }
};

// ---- atomic_write_file ----

TEST(AtomicWrite, RoundTripsAndCreatesParents) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_atomic";
  fs::remove_all(dir);
  const fs::path file = dir / "a" / "b" / "out.txt";
  ASSERT_TRUE(obs::atomic_write_file(file, "hello\nworld\n"));
  EXPECT_EQ(slurp(file), "hello\nworld\n");
  // Overwrite replaces atomically.
  ASSERT_TRUE(obs::atomic_write_file(file, "v2"));
  EXPECT_EQ(slurp(file), "v2");
  EXPECT_EQ(count_files_with(dir, ".tmp."), 0u);
  fs::remove_all(dir);
}

TEST(AtomicWrite, ShortWriteLeavesNoPartialFile) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_atomic_short";
  fs::remove_all(dir);
  const fs::path file = dir / "out.txt";
  obs::set_fault_spec("io.short_write:1");
  EXPECT_FALSE(obs::atomic_write_file(file, "doomed"));
  EXPECT_FALSE(fs::exists(file));                      // nothing visible at the target
  EXPECT_EQ(count_files_with(dir, ".tmp."), 0u);       // temp cleaned up
  // Fault consumed: the retry lands intact.
  EXPECT_TRUE(obs::atomic_write_file(file, "ok"));
  EXPECT_EQ(slurp(file), "ok");
  obs::set_fault_spec("");
  fs::remove_all(dir);
}

// Regression: the temp path used to be <path>.tmp.<pid>, so two threads
// flushing the same destination shared one temp file and tore each other
// mid-write (fclose EBADF races, partial renames). The per-process
// sequence suffix makes every in-flight temp unique.
TEST(AtomicWrite, ConcurrentWritersToOneDestinationNeverTear) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_atomic_race";
  fs::remove_all(dir);
  const fs::path file = dir / "out.txt";
  constexpr int kThreads = 8;
  constexpr int kWrites = 40;
  std::atomic<int> failures{0};
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t) {
    payloads.push_back(std::string(4096, static_cast<char>('a' + t)) + "\n");
  }
  std::vector<std::thread> crew;
  for (int t = 0; t < kThreads; ++t) {
    crew.emplace_back([&, t] {
      for (int w = 0; w < kWrites; ++w) {
        if (!obs::atomic_write_file(file, payloads[static_cast<size_t>(t)])) ++failures;
      }
    });
  }
  for (std::thread& th : crew) th.join();
  EXPECT_EQ(failures.load(), 0);  // no writer ever saw a torn temp file
  // Last rename wins, but whatever won must be one writer's payload in
  // full — never an interleaving or a truncation.
  const std::string final_bytes = slurp(file);
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), final_bytes), payloads.end());
  EXPECT_EQ(count_files_with(dir, ".tmp."), 0u);  // every temp renamed or removed
  fs::remove_all(dir);
}

TEST(AtomicWrite, FaultSpecCountsPerSite) {
  obs::set_fault_spec("site.a:2,site.b:*");
  EXPECT_FALSE(obs::fault_point("site.a"));  // call 1
  EXPECT_TRUE(obs::fault_point("site.a"));   // call 2 fires
  EXPECT_FALSE(obs::fault_point("site.a"));  // call 3
  EXPECT_TRUE(obs::fault_point("site.b"));   // '*' fires always
  EXPECT_TRUE(obs::fault_point("site.b"));
  obs::set_fault_spec("");
  EXPECT_FALSE(obs::fault_point("site.b"));  // disarmed
}

TEST(AtomicWrite, ChecksumIsStable) {
  EXPECT_EQ(obs::fnv1a64(""), 0xcbf29ce484222325ULL);  // FNV offset basis
  EXPECT_EQ(obs::checksum_hex("abc").size(), 16u);
  EXPECT_NE(obs::checksum_hex("abc"), obs::checksum_hex("abd"));
}

// ---- result cache durability ----

TEST_F(RobustnessFixture, CacheWriteFailureDoesNotPoisonLaterRuns) {
  const ExperimentConfig cfg = tiny_config();
  obs::set_fault_spec("io.short_write:*");
  const ExperimentResult r1 = runner->run(cfg);  // runs fine, cache write dropped
  EXPECT_FALSE(r1.failed);
  EXPECT_EQ(result_entry(), fs::path{});  // truncated entry never became visible

  obs::set_fault_spec("");
  const ExperimentResult r2 = runner->run(cfg);  // recomputed, now cached
  EXPECT_FALSE(r2.from_cache);
  EXPECT_DOUBLE_EQ(r1.post_top1, r2.post_top1);  // determinism: same experiment
  const ExperimentResult r3 = runner->run(cfg);
  EXPECT_TRUE(r3.from_cache);
}

TEST_F(RobustnessFixture, CorruptCacheEntryIsQuarantinedAndRecomputed) {
  const ExperimentConfig cfg = tiny_config();
  const ExperimentResult r1 = runner->run(cfg);
  const fs::path entry = result_entry();
  ASSERT_FALSE(entry.empty());

  // Flip bytes in the metrics line, keeping the three-line shape — the
  // checksum must catch it.
  std::string bytes = slurp(entry);
  const size_t line2 = bytes.find('\n') + 1;
  ASSERT_LT(line2 + 4, bytes.size());
  bytes[line2] = bytes[line2] == '9' ? '8' : '9';
  {
    std::ofstream os(entry, std::ios::binary | std::ios::trunc);
    os << bytes;
  }

  ExperimentRunner fresh(cache_dir);
  const ExperimentResult r2 = fresh.run(cfg);
  EXPECT_FALSE(r2.from_cache);                       // recomputed, never parsed
  EXPECT_DOUBLE_EQ(r1.post_top1, r2.post_top1);
  EXPECT_EQ(count_files_with(fs::path(cache_dir) / "results", ".corrupt"), 1u);
  const ExperimentResult r3 = fresh.run(cfg);        // rewritten entry is valid again
  EXPECT_TRUE(r3.from_cache);
}

// Regression: quarantining a corrupt entry when <entry>.corrupt already
// existed (same entry corrupted twice across runs) used to race the
// rename and could leave the corrupt entry in place, re-warning on every
// read. The quarantine must replace the old capture and stay idempotent.
TEST_F(RobustnessFixture, QuarantineReplacesExistingCorruptCapture) {
  const ExperimentConfig cfg = tiny_config();
  const ExperimentResult r1 = runner->run(cfg);
  const fs::path entry = result_entry();
  ASSERT_FALSE(entry.empty());

  // A stale capture from a previous quarantine of the same entry.
  fs::path stale = entry;
  stale += ".corrupt";
  {
    std::ofstream os(stale, std::ios::binary);
    os << "older corrupt capture";
  }

  std::string bytes = slurp(entry);
  const size_t line2 = bytes.find('\n') + 1;
  ASSERT_LT(line2 + 4, bytes.size());
  bytes[line2] = bytes[line2] == '9' ? '8' : '9';
  {
    std::ofstream os(entry, std::ios::binary | std::ios::trunc);
    os << bytes;
  }

  ExperimentRunner fresh(cache_dir);
  const ExperimentResult r2 = fresh.run(cfg);
  EXPECT_FALSE(r2.from_cache);
  EXPECT_DOUBLE_EQ(r1.post_top1, r2.post_top1);
  // Exactly one capture (the new one replaced the stale file), and the
  // rewritten entry is live again.
  EXPECT_EQ(count_files_with(fs::path(cache_dir) / "results", ".corrupt"), 1u);
  EXPECT_NE(slurp(stale), "older corrupt capture");
  const ExperimentResult r3 = fresh.run(cfg);
  EXPECT_TRUE(r3.from_cache);
}

TEST_F(RobustnessFixture, CorruptInjectionAtWriteTimeIsDetectedOnRead) {
  const ExperimentConfig cfg = tiny_config();
  obs::set_fault_spec("cache.corrupt:1");  // bit-rot the entry as it is written
  runner->run(cfg);
  obs::set_fault_spec("");

  ExperimentRunner fresh(cache_dir);
  const ExperimentResult r = fresh.run(cfg);
  EXPECT_FALSE(r.from_cache);
  EXPECT_EQ(count_files_with(fs::path(cache_dir) / "results", ".corrupt"), 1u);
}

TEST_F(RobustnessFixture, PreChecksumEntryIsSilentStaleMiss) {
  const ExperimentConfig cfg = tiny_config();
  runner->run(cfg);
  const fs::path entry = result_entry();
  ASSERT_FALSE(entry.empty());

  // Strip the "#crc" line: the layout of cache entries before checksums.
  std::string bytes = slurp(entry);
  const size_t crc_at = bytes.find("#crc ");
  ASSERT_NE(crc_at, std::string::npos);
  {
    std::ofstream os(entry, std::ios::binary | std::ios::trunc);
    os << bytes.substr(0, crc_at);
  }

  ExperimentRunner fresh(cache_dir);
  const ExperimentResult r = fresh.run(cfg);
  EXPECT_FALSE(r.from_cache);  // recomputed...
  EXPECT_EQ(count_files_with(fs::path(cache_dir) / "results", ".corrupt"), 0u);  // ...quietly
}

// ---- failure isolation in run_sweep ----

// Regression: a sweep whose rows all hit the result cache has no timing
// sample, and the ETA used to extrapolate from garbage (0.0s, or the
// last run's numbers). With no miss timing the sweep must say so.
TEST_F(RobustnessFixture, AllCacheHitSweepReportsUnknownEta) {
  ExperimentConfig base = tiny_config();
  SweepOptions options;
  options.retries = 0;
  SweepSummary sum;
  run_sweep(*runner, base, {base.strategy}, {2.0}, {1, 2}, options, &sum);  // warm the cache
  ASSERT_EQ(sum.failures, 0u);

  fs::create_directories(out_dir);
  const std::string log_path = out_dir + "/sweep.log";
  obs::set_log_file(log_path);
  SweepSummary warm;
  run_sweep(*runner, base, {base.strategy}, {2.0}, {1, 2}, options, &warm);
  obs::set_log_file("");
  EXPECT_EQ(warm.cache_hits, 2u);
  const std::string log = slurp(log_path);
  EXPECT_NE(log.find("eta unknown"), std::string::npos);  // every row: no estimate
  EXPECT_EQ(log.find("eta 0.0s"), std::string::npos);     // the old lie
}

TEST_F(RobustnessFixture, ThrowingExperimentBecomesFailedRowAndSweepContinues) {
  ExperimentConfig base = tiny_config();
  SweepOptions options;
  options.csv_path = out_dir + "/sweep.csv";
  options.retries = 0;
  SweepSummary summary;
  obs::set_fault_spec("experiment.throw:1");
  const auto results =
      run_sweep(*runner, base, {"global-weight"}, {2.0, 4.0}, {1}, options, &summary);
  obs::set_fault_spec("");

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].failed);
  EXPECT_NE(results[0].error.find("injected"), std::string::npos);
  EXPECT_FALSE(results[1].failed);
  EXPECT_EQ(summary.completed, 2u);
  EXPECT_EQ(summary.failures, 1u);
  EXPECT_EQ(summary.exit_code(), 1);

  // The failed row is in the streamed CSV, error string and all.
  const std::string csv = slurp(options.csv_path);
  EXPECT_NE(csv.find(",failed,"), std::string::npos);
  EXPECT_NE(csv.find("injected"), std::string::npos);
  EXPECT_NE(csv.find(",ok,"), std::string::npos);
}

TEST_F(RobustnessFixture, RetryRecoversTransientFailure) {
  ExperimentConfig base = tiny_config();
  SweepOptions options;
  options.retries = 1;
  SweepSummary summary;
  obs::set_fault_spec("experiment.throw:1");  // first attempt only
  const auto results = run_sweep(*runner, base, {"global-weight"}, {2.0}, {1}, options, &summary);
  obs::set_fault_spec("");

  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_EQ(summary.failures, 0u);
  EXPECT_EQ(summary.exit_code(), 0);
}

TEST_F(RobustnessFixture, FailedRowRoundTripsThroughCsv) {
  ExperimentResult r;
  r.config = tiny_config();
  r.failed = true;
  r.error = "bad, \"quoted\" and\nmultiline";
  const std::string row = experiment_csv_row(r);
  EXPECT_NE(row.find(",failed,"), std::string::npos);
  EXPECT_EQ(row.find('\n'), std::string::npos);  // one row stays one line
  const auto commas_outside_quotes = [](const std::string& s) {
    int n = 0;
    bool quoted = false;
    for (const char c : s) {
      if (c == '"') quoted = !quoted;
      n += (c == ',' && !quoted);
    }
    return n;
  };
  EXPECT_EQ(commas_outside_quotes(row),
            commas_outside_quotes(experiment_csv_header()));
}

// ---- crash / interrupt / resume ----

TEST_F(RobustnessFixture, AbortedSweepResumesWithZeroRecomputation) {
  ExperimentConfig base = tiny_config();
  const std::vector<std::string> strategies = {"global-weight", "random"};
  const std::vector<double> ratios = {2.0, 4.0};
  SweepOptions options;
  options.csv_path = out_dir + "/resume.csv";

  // "Crash" after two experiments: the abort throws out of run_sweep,
  // leaving the incremental CSV and the result cache as a kill -9 would.
  obs::set_fault_spec("sweep.abort:3");
  EXPECT_THROW(run_sweep(*runner, base, strategies, ratios, {1}, options), std::runtime_error);
  obs::set_fault_spec("");
  const std::string partial = slurp(options.csv_path);
  EXPECT_EQ(std::count(partial.begin(), partial.end(), '\n'), 3);  // header + 2 rows

  // Restart: the two pre-crash configs come from the cache, only the
  // remaining two are computed.
  ExperimentRunner restarted(cache_dir);
  SweepSummary resume;
  const auto results = run_sweep(restarted, base, strategies, ratios, {1}, options, &resume);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(resume.cache_hits, 2u);
  EXPECT_EQ(resume.failures, 0u);
  const std::string full = slurp(options.csv_path);
  EXPECT_EQ(partial, full.substr(0, partial.size()));  // prefix preserved verbatim

  // A fully-cached rerun reproduces the final CSV byte for byte.
  ExperimentRunner rerun(cache_dir);
  SweepSummary cached;
  run_sweep(rerun, base, strategies, ratios, {1}, options, &cached);
  EXPECT_EQ(cached.cache_hits, 4u);
  EXPECT_EQ(slurp(options.csv_path), full);
}

TEST_F(RobustnessFixture, InterruptFlushesAndStopsCleanly) {
  ExperimentConfig base = tiny_config();
  SweepOptions options;
  options.csv_path = out_dir + "/interrupted.csv";
  SweepSummary summary;
  obs::set_fault_spec("sweep.interrupt:2");  // SIGINT arrives before experiment 2
  const auto results =
      run_sweep(*runner, base, {"global-weight"}, {2.0, 4.0}, {1}, options, &summary);
  obs::set_fault_spec("");
  clear_sweep_interrupt();

  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(summary.interrupted);
  EXPECT_EQ(summary.completed, 1u);
  EXPECT_EQ(summary.exit_code(), 130);
  const std::string csv = slurp(options.csv_path);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);  // header + the finished row
}

TEST_F(RobustnessFixture, PendingInterruptStopsSweepBeforeWork) {
  request_sweep_interrupt();
  SweepSummary summary;
  const auto results =
      run_sweep(*runner, tiny_config(), {"global-weight"}, {2.0}, {1}, {}, &summary);
  clear_sweep_interrupt();
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(summary.interrupted);
}

// ---- training checkpoints ----

// Small but representative model: conv + batchnorm (running stats) +
// dropout (layer RNG stream) + prunable weights (masks).
SyntheticSpec ckpt_spec() {
  SyntheticSpec spec = synth_mnist();
  spec.train_size = 128;
  spec.val_size = 64;
  spec.test_size = 64;
  return spec;
}

ModelPtr ckpt_model(const DatasetBundle& bundle) {
  ModelPtr model = make_model("cifar-vgg-dropout", bundle.train.sample_shape(),
                              bundle.train.num_classes, /*base_width=*/4);
  Rng rng(7);
  init_model(*model, rng);
  return model;
}

void expect_tensors_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(float) * static_cast<size_t>(a.numel())), 0)
      << what;
}

void expect_state_dicts_equal(const StateDict& a, const StateDict& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, tensor] : a) {
    const auto it = b.find(key);
    ASSERT_NE(it, b.end()) << key;
    expect_tensors_equal(tensor, it->second, key);
  }
}

void expect_rng_states_equal(const RngState& a, const RngState& b) {
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.s[i], b.s[i]);
  EXPECT_EQ(a.has_cached_normal, b.has_cached_normal);
}

TEST(TrainCheckpointTest, RoundTripsAllState) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_ckpt_roundtrip";
  fs::remove_all(dir);
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);

  // Give every piece of state a non-default value: masks via pruning, BN
  // stats + dropout RNG via a training step, Adam moments + t via step().
  Rng prune_rng(3);
  prune_model(*model, strategy_from_name("global-weight"), 0.5, bundle.train, {}, prune_rng);
  DataLoader loader(bundle.train, 32, /*shuffle=*/true, /*seed=*/5, {});
  Adam opt(parameters_of(*model), {});
  SoftmaxCrossEntropy loss;
  Batch batch;
  ASSERT_TRUE(loader.next(batch));
  opt.zero_grad();
  loss.forward(model->forward(batch.x, /*train=*/true), batch.y);
  model->backward(loss.backward());
  opt.step();

  TrainCheckpoint ck;
  ck.epoch = 3;
  ck.lr_scale = 0.25;
  ck.model = state_dict(*model);
  ck.best_state = ck.model;
  ck.optimizer = opt.state();
  const DataLoaderState ls = loader.state();
  ck.loader_shuffle_rng = ls.shuffle_rng;
  ck.loader_augment_rng = ls.augment_rng;
  ck.layer_rng = layer_rng_states(*model);
  ck.history = {{0, 2.0, 0.3, 1.9}, {1, 1.5, 0.4, 1.6}};
  ck.best_val_top1 = 0.4;
  ck.best_epoch = 1;
  ck.epochs_since_best = 2;
  ck.anomalies = 5;
  ck.skipped_batches = 2;
  ck.rollbacks = 1;
  ASSERT_TRUE(save_train_checkpoint(ck, dir.string()));

  TrainCheckpoint out;
  ASSERT_TRUE(load_latest_train_checkpoint(dir.string(), out));
  EXPECT_EQ(out.epoch, 3);
  EXPECT_DOUBLE_EQ(out.lr_scale, 0.25);
  // The StateDict carries masks and batchnorm running stats by key.
  EXPECT_GT(std::count_if(out.model.begin(), out.model.end(),
                          [](const auto& kv) {
                            return kv.first.find(".mask") != std::string::npos;
                          }),
            0);
  EXPECT_GT(std::count_if(out.model.begin(), out.model.end(),
                          [](const auto& kv) {
                            return kv.first.find(".running_mean") != std::string::npos;
                          }),
            0);
  expect_state_dicts_equal(ck.model, out.model);
  expect_state_dicts_equal(ck.best_state, out.best_state);
  EXPECT_EQ(out.optimizer.kind, "adam");
  ASSERT_EQ(out.optimizer.slots.size(), ck.optimizer.slots.size());
  for (size_t i = 0; i < ck.optimizer.slots.size(); ++i) {
    EXPECT_EQ(out.optimizer.slots[i].first, ck.optimizer.slots[i].first);
    expect_tensors_equal(out.optimizer.slots[i].second, ck.optimizer.slots[i].second,
                         ck.optimizer.slots[i].first);
  }
  ASSERT_EQ(out.optimizer.scalars.size(), 1u);
  EXPECT_EQ(out.optimizer.scalars[0].first, "t");
  EXPECT_DOUBLE_EQ(out.optimizer.scalars[0].second, 1.0);  // one step taken
  expect_rng_states_equal(out.loader_shuffle_rng, ck.loader_shuffle_rng);
  expect_rng_states_equal(out.loader_augment_rng, ck.loader_augment_rng);
  ASSERT_EQ(out.layer_rng.size(), ck.layer_rng.size());
  ASSERT_GE(out.layer_rng.size(), 1u);  // the dropout layer
  for (size_t i = 0; i < ck.layer_rng.size(); ++i) {
    EXPECT_EQ(out.layer_rng[i].first, ck.layer_rng[i].first);
    expect_rng_states_equal(out.layer_rng[i].second, ck.layer_rng[i].second);
  }
  ASSERT_EQ(out.history.size(), 2u);
  EXPECT_DOUBLE_EQ(out.history[1].train_loss, 1.5);
  EXPECT_DOUBLE_EQ(out.best_val_top1, 0.4);
  EXPECT_EQ(out.best_epoch, 1);
  EXPECT_EQ(out.epochs_since_best, 2);
  EXPECT_EQ(out.anomalies, 5);
  EXPECT_EQ(out.skipped_batches, 2);
  EXPECT_EQ(out.rollbacks, 1);
  fs::remove_all(dir);
}

// best_state is usually a byte copy of the model dict (validation just
// improved); the writer collapses that to a flag. Both the deduplicated
// and the distinct encoding must round-trip, and the dedup must shrink
// the file.
TEST(TrainCheckpointTest, DedupesBestStateWhenIdenticalToModel) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_ckpt_dedup";
  fs::remove_all(dir);
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);

  TrainCheckpoint same;
  same.epoch = 0;
  same.model = state_dict(*model);
  same.best_state = same.model;
  same.optimizer = {"stateless", {}, {}};
  ASSERT_TRUE(save_train_checkpoint(same, dir.string(), /*keep=*/4));

  TrainCheckpoint distinct = same;
  distinct.epoch = 1;
  distinct.best_state.begin()->second.data()[0] += 1.0f;
  ASSERT_TRUE(save_train_checkpoint(distinct, dir.string(), /*keep=*/4));

  const auto size_of = [&](int64_t epoch) {
    return fs::file_size(train_checkpoint_path(dir.string(), epoch));
  };
  EXPECT_LT(size_of(0), size_of(1));

  TrainCheckpoint out;
  ASSERT_TRUE(load_train_checkpoint(train_checkpoint_path(dir.string(), 0), out));
  expect_state_dicts_equal(same.best_state, out.best_state);
  ASSERT_TRUE(load_train_checkpoint(train_checkpoint_path(dir.string(), 1), out));
  expect_state_dicts_equal(distinct.best_state, out.best_state);
  expect_state_dicts_equal(distinct.model, out.model);
  fs::remove_all(dir);
}

TEST(TrainCheckpointTest, CorruptNewestFallsBackToPrevious) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_ckpt_fallback";
  fs::remove_all(dir);
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  TrainCheckpoint ck;
  ck.model = state_dict(*model);
  ck.optimizer = {"stateless", {}, {}};
  ck.epoch = 0;
  ASSERT_TRUE(save_train_checkpoint(ck, dir.string()));
  ck.epoch = 1;
  ASSERT_TRUE(save_train_checkpoint(ck, dir.string()));

  // Bit-flip the newest checkpoint: its checksum fails, it is quarantined,
  // and the loader falls back to the epoch-0 file.
  const fs::path newest = train_checkpoint_path(dir.string(), 1);
  std::string bytes = slurp(newest);
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream os(newest, std::ios::binary | std::ios::trunc);
    os << bytes;
  }
  TrainCheckpoint out;
  ASSERT_TRUE(load_latest_train_checkpoint(dir.string(), out));
  EXPECT_EQ(out.epoch, 0);
  EXPECT_EQ(count_files_with(dir, ".corrupt"), 1u);

  // Truncate the survivor too: nothing valid remains.
  const fs::path oldest = train_checkpoint_path(dir.string(), 0);
  bytes = slurp(oldest);
  {
    std::ofstream os(oldest, std::ios::binary | std::ios::trunc);
    os << bytes.substr(0, bytes.size() / 3);
  }
  EXPECT_FALSE(load_latest_train_checkpoint(dir.string(), out));
  EXPECT_EQ(count_files_with(dir, ".corrupt"), 2u);
  fs::remove_all(dir);
}

TEST(TrainCheckpointTest, WriteTimeCorruptionInjectionIsCaught) {
  const fs::path dir = fs::path(::testing::TempDir()) / "sb_ckpt_writecorrupt";
  fs::remove_all(dir);
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  TrainCheckpoint ck;
  ck.model = state_dict(*model);
  ck.optimizer = {"stateless", {}, {}};
  ck.epoch = 0;
  ASSERT_TRUE(save_train_checkpoint(ck, dir.string()));
  obs::set_fault_spec("ckpt.corrupt:1");  // bit-rot epoch 1 as it is written
  ck.epoch = 1;
  ASSERT_TRUE(save_train_checkpoint(ck, dir.string()));
  obs::set_fault_spec("");
  TrainCheckpoint out;
  ASSERT_TRUE(load_latest_train_checkpoint(dir.string(), out));
  EXPECT_EQ(out.epoch, 0);
  EXPECT_EQ(count_files_with(dir, ".corrupt"), 1u);
  fs::remove_all(dir);
}

// ---- numeric-anomaly detection and recovery ----

TrainOptions anomaly_train_options() {
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 32;
  opts.patience = 0;
  opts.grad_check_every = 1;
  return opts;
}

TEST(TrainAnomaly, ThrowPolicyFailsFastOnNanLoss) {
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  obs::set_fault_spec("train.nan_loss:2");
  EXPECT_THROW(train_model(*model, bundle, anomaly_train_options()), NumericAnomalyError);
  obs::set_fault_spec("");
}

TEST(TrainAnomaly, ThrowPolicyFailsFastOnNanGrad) {
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  obs::set_fault_spec("train.nan_grad:1");
  EXPECT_THROW(train_model(*model, bundle, anomaly_train_options()), NumericAnomalyError);
  obs::set_fault_spec("");
}

TEST(TrainAnomaly, SkipBatchDropsTheBatchAndFinishes) {
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  TrainOptions opts = anomaly_train_options();
  opts.anomaly_policy = AnomalyPolicy::SkipBatch;
  obs::set_fault_spec("train.nan_loss:2");
  const TrainHistory hist = train_model(*model, bundle, opts);
  obs::set_fault_spec("");
  EXPECT_EQ(hist.anomalies, 1);
  EXPECT_EQ(hist.skipped_batches, 1);
  EXPECT_EQ(hist.rollbacks, 0);
  EXPECT_EQ(static_cast<int>(hist.epochs.size()), opts.epochs);
  EXPECT_TRUE(std::isfinite(hist.epochs.back().train_loss));
}

TEST(TrainAnomaly, RollbackRestoresLastGoodAndHalvesLr) {
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  TrainOptions opts = anomaly_train_options();
  opts.epochs = 3;
  opts.anomaly_policy = AnomalyPolicy::Rollback;
  obs::set_fault_spec("train.nan_loss:6");  // mid-epoch, after a good epoch
  const TrainHistory hist = train_model(*model, bundle, opts);
  obs::set_fault_spec("");
  EXPECT_EQ(hist.anomalies, 1);
  EXPECT_EQ(hist.rollbacks, 1);
  EXPECT_FLOAT_EQ(hist.lr_scale, 0.5f);
  EXPECT_EQ(static_cast<int>(hist.epochs.size()), opts.epochs);
}

TEST(TrainAnomaly, RollbackBudgetExhaustionThrows) {
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  TrainOptions opts = anomaly_train_options();
  opts.anomaly_policy = AnomalyPolicy::Rollback;
  opts.anomaly_max_rollbacks = 2;
  obs::set_fault_spec("train.nan_loss:*");  // every batch diverges
  EXPECT_THROW(train_model(*model, bundle, opts), NumericAnomalyError);
  obs::set_fault_spec("");
}

TEST(TrainAnomaly, GradClippingBoundsGlobalNormAndDetectsNan) {
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  auto params = parameters_of(*model);
  int64_t n = 0;
  for (Parameter* p : params) {
    float* g = p->grad.data();
    for (int64_t j = 0; j < p->numel(); ++j) g[j] = 3.0f;
    n += p->numel();
  }
  SGD opt(params, {});
  EXPECT_TRUE(opt.grads_finite());
  const double pre_norm = opt.clip_global_grad_norm(1.0f);
  EXPECT_NEAR(pre_norm, 3.0 * std::sqrt(static_cast<double>(n)), 1e-3);
  double post_sq = 0.0;
  for (const Parameter* p : params) {
    const float* g = p->grad.data();
    for (int64_t j = 0; j < p->numel(); ++j) post_sq += static_cast<double>(g[j]) * g[j];
  }
  EXPECT_NEAR(std::sqrt(post_sq), 1.0, 1e-4);
  params[0]->grad.data()[0] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(opt.grads_finite());
  EXPECT_FALSE(std::isfinite(opt.clip_global_grad_norm(1.0f)));
}

// ---- train_model guards (satellites) ----

TEST(TrainGuards, EmptySplitThrowsDescriptively) {
  DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  DatasetBundle no_train = bundle;
  no_train.train.images = Tensor();
  EXPECT_THROW(train_model(*model, no_train, anomaly_train_options()), std::invalid_argument);
  DatasetBundle no_val = bundle;
  no_val.val.images = Tensor();
  EXPECT_THROW(train_model(*model, no_val, anomaly_train_options()), std::invalid_argument);
}

TEST(TrainGuards, ZeroEpochRunNeverClobbersWeights) {
  const DatasetBundle bundle = make_synthetic(ckpt_spec());
  ModelPtr model = ckpt_model(bundle);
  const StateDict before = state_dict(*model);
  TrainOptions opts = anomaly_train_options();
  opts.epochs = 0;
  opts.restore_best = true;  // best_state stays empty — must not be loaded
  const TrainHistory hist = train_model(*model, bundle, opts);
  EXPECT_EQ(hist.best_epoch, -1);
  expect_state_dicts_equal(before, state_dict(*model));
}

// ---- crash-and-resume through the experiment runner ----

TEST_F(RobustnessFixture, CrashedExperimentResumesFromCheckpoints) {
  obs::set_profiling_enabled(true);
  obs::Profiler::instance().reset();
  ExperimentConfig cfg = tiny_config();
  cfg.pretrain.epochs = 4;

  // Crash pretraining at epoch 2: epochs 0-1 are checkpointed.
  obs::set_fault_spec("train.crash_epoch:3");
  EXPECT_THROW(runner->run(cfg), std::runtime_error);
  obs::set_fault_spec("");
  auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("train.epochs"), 2);

  // The rerun resumes: only epochs 2-3 of pretraining plus the single
  // fine-tune epoch actually execute.
  obs::Profiler::instance().reset();
  const ExperimentResult resumed = runner->run(cfg);
  snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("train.epochs"), 3);
  EXPECT_GE(snap.counters.at("train.resume"), 1);
  obs::set_profiling_enabled(false);

  // Identical metrics to a run that never crashed (fresh cache).
  const std::string control_cache = ::testing::TempDir() + "/sb_robust_cache_control";
  fs::remove_all(control_cache);
  ExperimentRunner control_runner(control_cache);
  const ExperimentResult control = control_runner.run(cfg);
  EXPECT_DOUBLE_EQ(resumed.post_top1, control.post_top1);
  EXPECT_DOUBLE_EQ(resumed.post_top5, control.post_top5);
  EXPECT_DOUBLE_EQ(resumed.pre_top1, control.pre_top1);
  fs::remove_all(control_cache);

  // Checkpoints are transient resume state: once the pretrained model and
  // the result row are cached, the .ckpt files are cleaned up.
  EXPECT_EQ(count_files_with(fs::path(cache_dir) / "ckpt", ".ckpt"), 0u);
}

TEST_F(RobustnessFixture, AnomalyCountsSurfaceInRunManifest) {
  ExperimentResult r;
  r.config = tiny_config();
  r.anomalies = 3;
  r.skipped_batches = 2;
  r.rollbacks = 1;
  r.resumed_rounds = 1;
  const std::string path = out_dir + "/manifest.json";
  write_run_manifest(path, "unit", {r});
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"anomalies\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"skipped_batches\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rollbacks\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"resumed_rounds\": 1"), std::string::npos);

  // Clean rows stay schema-stable: no anomaly keys at all.
  ExperimentResult clean;
  clean.config = tiny_config();
  write_run_manifest(path, "unit", {clean});
  EXPECT_EQ(slurp(path).find("anomalies"), std::string::npos);
}

// ---- satellite: gemm FLOP accounting ----

TEST(GemmCounters, EarlyReturnDoesNotInflateFlops) {
  obs::set_profiling_enabled(true);
  obs::Profiler::instance().reset();
  float a[4] = {1, 2, 3, 4}, b[4] = {5, 6, 7, 8}, c[4] = {0, 0, 0, 0};

  gemm(false, false, 2, 2, 2, /*alpha=*/0.0f, a, 2, b, 2, /*beta=*/1.0f, c, 2);
  auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.count("gemm.flops"), 0u);  // no multiply-adds ran
  EXPECT_EQ(snap.counters.at("gemm.calls"), 1);

  gemm(false, false, 2, 2, 2, /*alpha=*/1.0f, a, 2, b, 2, /*beta=*/0.0f, c, 2);
  snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("gemm.flops"), 2 * 2 * 2 * 2);
  obs::Profiler::instance().reset();
  obs::set_profiling_enabled(false);
}

}  // namespace
}  // namespace shrinkbench
