// Serving engine tests: compiler parity against the eval-mode model,
// dynamic-batcher semantics (max-wait flush, full-batch flush, lossless
// drain), parallel CSR matmul determinism, and steady-state zero-growth
// of the sparse inference scratch paths.
//
// Registered in CMake under SB_THREADS={1,2,4} as well as the default, so
// every parity assertion here doubles as a determinism check: compiled
// executors must produce the same bits at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/allocation.hpp"
#include "core/pruner.hpp"
#include "core/scoring.hpp"
#include "models/zoo.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "nn/sparse.hpp"
#include "serve/executor.hpp"
#include "serve/server.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "tensor/threadpool.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {
namespace {

using serve::ExecMode;
using serve::InferenceServer;
using serve::ServerOptions;
using serve::ServerStats;

// Builds a trained-looking pruned zoo model: Kaiming weights, off-default
// biases and BN affine params (so folding mistakes can't hide behind
// gamma=1/beta=0), BN running stats populated by train-mode forwards, and
// global magnitude masks applied at the given structure/keep fraction.
ModelPtr pruned_zoo_model(const std::string& arch, const Shape& sample, Structure structure,
                          double keep) {
  Rng rng(17);
  ModelPtr model = make_model(arch, sample, /*num_classes=*/10, /*base_width=*/8);
  init_model(*model, rng);
  for (Parameter* p : parameters_of(*model)) {
    if (!p->prunable) rng.fill_normal(p->data, 0.2f, 0.6f);
  }
  for (int i = 0; i < 2; ++i) {
    Shape in{4};
    in.insert(in.end(), sample.begin(), sample.end());
    Tensor x(in);
    rng.fill_normal(x, 0, 1);
    model->forward(x, /*train=*/true);
  }
  PruneOptions opts;
  std::vector<ScoredParam> scored;
  for (Parameter* p : prunable_params(*model, opts)) {
    scored.push_back({p, score_parameter(ScoreKind::Magnitude, *p, {}, rng)});
  }
  allocate_masks(scored, AllocationScope::Global, structure, keep);
  apply_masks(*model);
  return model;
}

// Compares the compiled executor against the eval-mode Sequential across
// the issue's batch sizes. rtol/atol == 0 demands bit-identity (Dense
// mode); Csr/Shrunk fold BN into the weights before the matmul, which
// reorders the floating-point work per output element, so those modes get
// a small documented tolerance instead.
void expect_parity(Sequential& model, const Shape& sample, ExecMode mode, float rtol,
                   float atol) {
  const serve::Executor exec = serve::compile(model, sample, mode);
  Rng rng(91);
  for (const int64_t n : {int64_t{1}, int64_t{7}, int64_t{32}}) {
    Shape in{n};
    in.insert(in.end(), sample.begin(), sample.end());
    Tensor x(in);
    rng.fill_normal(x, 0, 1);
    const Tensor ref = model.forward(x, /*train=*/false);
    const Tensor got = exec.forward(x);
    ASSERT_EQ(got.shape(), ref.shape());
    EXPECT_TRUE(ops::allclose(got, ref, rtol, atol))
        << serve::to_string(mode) << " diverged from eval forward at batch " << n;
  }
}

const Shape kCifarSample{3, 32, 32};

TEST(ServeExecutor, DenseBitMatchesVgg) {
  ModelPtr m = pruned_zoo_model("cifar-vgg", kCifarSample, Structure::Unstructured, 0.25);
  expect_parity(*m, kCifarSample, ExecMode::Dense, 0, 0);
}

TEST(ServeExecutor, CsrMatchesVgg) {
  ModelPtr m = pruned_zoo_model("cifar-vgg", kCifarSample, Structure::Unstructured, 0.25);
  expect_parity(*m, kCifarSample, ExecMode::Csr, 1e-3f, 1e-3f);
}

TEST(ServeExecutor, ShrunkMatchesChannelPrunedVgg) {
  ModelPtr m = pruned_zoo_model("cifar-vgg", kCifarSample, Structure::Channel, 0.5);
  expect_parity(*m, kCifarSample, ExecMode::Shrunk, 1e-3f, 1e-3f);
}

TEST(ServeExecutor, DenseBitMatchesResnet20) {
  ModelPtr m = pruned_zoo_model("resnet-20", kCifarSample, Structure::Unstructured, 0.25);
  expect_parity(*m, kCifarSample, ExecMode::Dense, 0, 0);
}

TEST(ServeExecutor, CsrMatchesResnet20) {
  ModelPtr m = pruned_zoo_model("resnet-20", kCifarSample, Structure::Unstructured, 0.25);
  expect_parity(*m, kCifarSample, ExecMode::Csr, 2e-3f, 2e-3f);
}

TEST(ServeExecutor, ShrunkMatchesChannelPrunedResnet20) {
  ModelPtr m = pruned_zoo_model("resnet-20", kCifarSample, Structure::Channel, 0.5);
  expect_parity(*m, kCifarSample, ExecMode::Shrunk, 2e-3f, 2e-3f);
}

TEST(ServeExecutor, TheoreticalSpeedupTracksEffectiveFlops) {
  ModelPtr m = pruned_zoo_model("cifar-vgg", kCifarSample, Structure::Unstructured, 0.25);
  const serve::Executor dense = serve::compile(*m, kCifarSample, ExecMode::Dense);
  const serve::Executor csr = serve::compile(*m, kCifarSample, ExecMode::Csr);
  EXPECT_EQ(dense.flops_dense(), csr.flops_dense());
  EXPECT_LT(csr.flops_effective(), csr.flops_dense());
  EXPECT_GT(csr.theoretical_speedup(), 1.0);
  EXPECT_EQ(m->flops(kCifarSample), csr.flops_dense());
  EXPECT_EQ(m->effective_flops(kCifarSample), csr.flops_effective());
}

TEST(ServeExecutor, ForwardRejectsWrongSampleShape) {
  ModelPtr m = pruned_zoo_model("cifar-vgg", kCifarSample, Structure::Unstructured, 0.5);
  const serve::Executor exec = serve::compile(*m, kCifarSample, ExecMode::Dense);
  Tensor bad({2, 3, 16, 16});
  EXPECT_THROW(exec.forward(bad), std::invalid_argument);
}

TEST(ServeExecutor, ModeNamesRoundTrip) {
  for (const ExecMode mode : {ExecMode::Dense, ExecMode::Csr, ExecMode::Shrunk}) {
    EXPECT_EQ(serve::exec_mode_from_name(serve::to_string(mode)), mode);
  }
  EXPECT_THROW(serve::exec_mode_from_name("bogus"), std::invalid_argument);
}

// ---- fused-grid executors: bit-identical across thread counts ----

TEST(ServeExecutor, ForwardBitIdenticalAcrossThreadCounts) {
  // The conv ops fan out over a fused (sample x out-channel-tile) grid,
  // so even batch-1 forwards engage the pool; the static partition must
  // keep every mode's output bit-identical at any SB_THREADS.
  ModelPtr m = pruned_zoo_model("cifar-vgg", kCifarSample, Structure::Channel, 0.5);
  ThreadPool& pool = ThreadPool::instance();
  const int original = pool.threads();
  Rng rng(21);
  for (const ExecMode mode : {ExecMode::Dense, ExecMode::Csr, ExecMode::Shrunk}) {
    const serve::Executor exec = serve::compile(*m, kCifarSample, mode);
    for (const int64_t n : {int64_t{1}, int64_t{7}}) {
      Shape in{n};
      in.insert(in.end(), kCifarSample.begin(), kCifarSample.end());
      Tensor x(in);
      rng.fill_normal(x, 0, 1);
      pool.set_threads(1);
      const Tensor ref = exec.forward(x);
      for (const int threads : {2, 4}) {
        pool.set_threads(threads);
        const Tensor got = exec.forward(x);
        EXPECT_TRUE(ops::allclose(got, ref, 0, 0))
            << serve::to_string(mode) << " batch " << n << " diverged at threads=" << threads;
      }
    }
  }
  pool.set_threads(original);
}

// ---- parallel CSR matmul: bit-identical to serial at any SB_THREADS ----

TEST(ServeKernels, CsrMatmulParallelBitMatchesSerial) {
  Rng rng(5);
  const int64_t rows = 512, cols = 256, n = 64;
  Tensor dense({rows, cols});
  rng.fill_normal(dense, 0, 1);
  for (float& v : dense.flat()) {
    if (rng.bernoulli(0.7)) v = 0.0f;
  }
  const CsrMatrix csr = csr_from_dense(dense.data(), rows, cols);
  Tensor x({cols, n});
  rng.fill_normal(x, 0, 1);
  Tensor serial({rows, n}), threaded({rows, n});
  {
    ThreadPool::SerialGuard guard;  // forces the row loop inline-serial
    csr_matmul(csr, x.data(), n, serial.data());
  }
  csr_matmul(csr, x.data(), n, threaded.data());  // fans out per SB_THREADS
  EXPECT_TRUE(ops::allclose(serial, threaded, 0, 0));
}

// ---- sparse inference scratch: steady-state zero growth ----

TEST(ServeWorkspace, SparseInferencePathsReachSteadyState) {
  Rng rng(7);
  Conv2d conv("c", 4, 8, 3, 1, 1, /*bias=*/true);
  Linear lin("l", 48, 16);
  init_model(conv, rng);
  init_model(lin, rng);
  for (float& v : conv.weight().data.flat()) {
    if (rng.bernoulli(0.6)) v = 0.0f;
  }
  for (float& v : lin.weight().data.flat()) {
    if (rng.bernoulli(0.6)) v = 0.0f;
  }
  const SparseConv2dInference sconv(conv);
  const SparseLinearInference slin(lin);
  Tensor xc({2, 4, 10, 10}), xl({5, 48});
  rng.fill_normal(xc, 0, 1);
  rng.fill_normal(xl, 0, 1);
  for (int i = 0; i < 3; ++i) {  // warm-up grows the arena once
    sconv.forward(xc);
    slin.forward(xl);
  }
  Workspace& ws = Workspace::tls();
  const int64_t grows = ws.grow_count();
  const size_t cap = ws.capacity();
  for (int i = 0; i < 5; ++i) {
    sconv.forward(xc);
    slin.forward(xl);
  }
  EXPECT_EQ(ws.grow_count(), grows) << "sparse forward allocated scratch per call";
  EXPECT_EQ(ws.capacity(), cap);
}

TEST(ServeWorkspace, ExecutorForwardReachesSteadyState) {
  ModelPtr m = pruned_zoo_model("cifar-vgg", kCifarSample, Structure::Unstructured, 0.25);
  const serve::Executor exec = serve::compile(*m, kCifarSample, ExecMode::Csr);
  Rng rng(9);
  Tensor x({4, 3, 32, 32});
  rng.fill_normal(x, 0, 1);
  for (int i = 0; i < 3; ++i) exec.forward(x);
  Workspace& ws = Workspace::tls();
  const int64_t grows = ws.grow_count();
  for (int i = 0; i < 3; ++i) exec.forward(x);
  EXPECT_EQ(ws.grow_count(), grows) << "executor grew the arena after warm-up";
}

// ---- dynamic batcher ----

ModelPtr tiny_model(Rng& rng) {
  auto m = std::make_unique<Sequential>("tiny");
  m->emplace<Linear>("fc", 8, 4);
  init_model(*m, rng);
  return m;
}

Tensor random_sample(Rng& rng) {
  Tensor s({8});
  rng.fill_normal(s, 0, 1);
  return s;
}

TEST(ServeBatcher, FullBatchFlushesWithoutWaitingForTheTimer) {
  Rng rng(3);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 4;
  opts.max_wait_us = 10'000'000;  // 10 s: only a full batch can flush fast
  InferenceServer server(exec, opts);
  std::vector<std::future<Tensor>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(server.submit(random_sample(rng)));
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready)
        << "full batch did not flush before the max-wait timer";
    EXPECT_EQ(f.get().shape(), (Shape{4}));
  }
  server.shutdown();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.completed, 4);
  EXPECT_EQ(st.failed, 0);
  EXPECT_EQ(st.batches, 1);  // one full batch, not four timer flushes
}

TEST(ServeBatcher, MaxWaitFlushesPartialBatch) {
  Rng rng(4);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 64;       // never reached by 3 requests...
  opts.max_wait_us = 20'000; // ...so only the 20 ms timer can flush them
  InferenceServer server(exec, opts);
  std::vector<std::future<Tensor>> futs;
  for (int i = 0; i < 3; ++i) futs.push_back(server.submit(random_sample(rng)));
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready)
        << "partial batch never flushed on max-wait";
    EXPECT_EQ(f.get().shape(), (Shape{4}));
  }
  // Futures are fulfilled before the worker's stats update lands, so
  // quiesce (shutdown joins the workers) before reading counters.
  server.shutdown();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.completed, 3);
  EXPECT_EQ(st.failed, 0);
}

TEST(ServeBatcher, DrainOnShutdownLosesZeroRequests) {
  Rng rng(6);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  ServerOptions opts;
  opts.workers = 2;
  opts.max_batch = 3;
  opts.max_wait_us = 60'000'000;  // 60 s: a lossy drain would visibly hang
  InferenceServer server(exec, opts);
  std::vector<std::future<Tensor>> futs;
  for (int i = 0; i < 40; ++i) futs.push_back(server.submit(random_sample(rng)));
  server.shutdown();  // returns only after the queue is fully drained
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().shape(), (Shape{4}));
  }
  const ServerStats st = server.stats();
  EXPECT_EQ(st.submitted, 40);
  EXPECT_EQ(st.completed, 40);
  EXPECT_EQ(st.failed, 0);
  EXPECT_EQ(st.rejected, 0);

  // Late submissions are rejected, not silently dropped.
  EXPECT_FALSE(server.accepting());
  EXPECT_THROW(server.submit(random_sample(rng)), std::runtime_error);
  EXPECT_EQ(server.stats().rejected, 1);
}

TEST(ServeBatcher, SingleRequestBitMatchesExecutor) {
  Rng rng(8);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;  // server must form exactly the same batch-of-1
  InferenceServer server(exec, opts);
  const Tensor s = random_sample(rng);
  std::future<Tensor> fut = server.submit(s.clone());
  Tensor batch({1, 8});
  std::copy(s.data(), s.data() + 8, batch.data());
  const Tensor y = exec.forward(batch);
  Tensor expect({4});
  std::copy(y.data(), y.data() + 4, expect.data());
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_TRUE(ops::allclose(fut.get(), expect, 0, 0));
}

TEST(ServeBatcher, SubmitRejectsWrongSampleShape) {
  Rng rng(10);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  InferenceServer server(exec, ServerOptions{});
  Tensor bad({4});
  EXPECT_THROW(server.submit(std::move(bad)), std::invalid_argument);
}

TEST(ServeBatcher, OptionsAreValidated) {
  Rng rng(11);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  ServerOptions opts;
  opts.workers = 0;
  EXPECT_THROW(InferenceServer(exec, opts), std::invalid_argument);
}

}  // namespace
}  // namespace shrinkbench
