// Model-zoo tests: every registered architecture builds, propagates shapes,
// reports sensible FLOP/param counts, and flags its classifier correctly.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "nn/init.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench {
namespace {

const Shape kCifarSample{3, 8, 8};
constexpr int kClasses = 10;

class AllModels : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModels, BuildsAndForwards) {
  auto model = make_model(GetParam(), kCifarSample, kClasses);
  Rng rng(1);
  init_model(*model, rng);
  Tensor x({4, 3, 8, 8});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = model->forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{4, kClasses}));
  for (float v : y.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(AllModels, OutputSampleShapeAgreesWithForward) {
  auto model = make_model(GetParam(), kCifarSample, kClasses);
  EXPECT_EQ(model->output_sample_shape(kCifarSample), (Shape{kClasses}));
}

TEST_P(AllModels, HasExactlyOneClassifierParam) {
  auto model = make_model(GetParam(), kCifarSample, kClasses);
  int classifiers = 0;
  for (const Parameter* p : parameters_of(*model)) classifiers += p->is_classifier;
  EXPECT_EQ(classifiers, 1);
}

TEST_P(AllModels, FlopsPositiveAndEffectiveMatchesDenseUnpruned) {
  auto model = make_model(GetParam(), kCifarSample, kClasses);
  const FlopCounts f = count_flops(*model, kCifarSample);
  EXPECT_GT(f.dense, 0);
  EXPECT_EQ(f.dense, f.effective);
}

TEST_P(AllModels, ParamNamesAreUnique) {
  auto model = make_model(GetParam(), kCifarSample, kClasses);
  std::set<std::string> names;
  for (const Parameter* p : parameters_of(*model)) {
    EXPECT_TRUE(names.insert(p->name).second) << "duplicate " << p->name;
  }
}

TEST_P(AllModels, TrainBackwardRuns) {
  auto model = make_model(GetParam(), kCifarSample, kClasses);
  Rng rng(2);
  init_model(*model, rng);
  Tensor x({2, 3, 8, 8});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = model->forward(x, true);
  Tensor dy(y.shape());
  rng.fill_normal(dy, 0.0f, 1.0f);
  const Tensor dx = model->backward(dy);
  EXPECT_EQ(dx.shape(), x.shape());
  // Some gradient must be nonzero.
  double total = 0;
  for (const Parameter* p : parameters_of(*model)) total += ops::sum_sq(p->grad);
  EXPECT_GT(total, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Zoo, AllModels, ::testing::ValuesIn(model_names()));

TEST(ResNet, DepthFormula) {
  auto r20 = resnet_cifar(20, kCifarSample, 10, 4);
  auto r56 = resnet_cifar(56, kCifarSample, 10, 4);
  // 56-depth network has (56-2)/6 = 9 blocks/stage vs 3 for depth 20.
  const int64_t p20 = count_params(*r20).total;
  const int64_t p56 = count_params(*r56).total;
  EXPECT_GT(p56, 2 * p20);
  EXPECT_THROW(resnet_cifar(21, kCifarSample, 10), std::invalid_argument);
  EXPECT_THROW(resnet_cifar(2, kCifarSample, 10), std::invalid_argument);
}

TEST(ResNet, WidthScalesParamsQuadratically) {
  const int64_t p8 = count_params(*resnet_cifar(20, kCifarSample, 10, 8)).total;
  const int64_t p16 = count_params(*resnet_cifar(20, kCifarSample, 10, 16)).total;
  EXPECT_GT(p16, 3 * p8);
  EXPECT_LT(p16, 5 * p8);
}

TEST(Zoo, ConvParamsDominateResNets) {
  // Pruning only touches conv/linear weights; for the compression ratios
  // the benches sweep (up to 32x), prunable weights must dominate.
  auto model = resnet_cifar(56, kCifarSample, 10, 8);
  const ParamCounts c = count_params(*model);
  EXPECT_GT(static_cast<double>(c.prunable) / c.total, 0.9);
}

TEST(Zoo, UnknownArchThrows) {
  EXPECT_THROW(make_model("resnet-57", kCifarSample, 10), std::invalid_argument);
}

TEST(Zoo, LenetRejectsNonImageInput) {
  EXPECT_THROW(lenet5({32}, 10), std::invalid_argument);
  EXPECT_NO_THROW(lenet_300_100({32}, 10));  // MLP flattens anything
}

TEST(Zoo, ImagenetStyleResNet18OnLargerInput) {
  const Shape sample{3, 12, 12};
  auto model = resnet18(sample, 20);
  Rng rng(4);
  init_model(*model, rng);
  Tensor x({2, 3, 12, 12});
  rng.fill_normal(x, 0.0f, 1.0f);
  EXPECT_EQ(model->forward(x, false).shape(), (Shape{2, 20}));
}

}  // namespace
}  // namespace shrinkbench
