// Synthetic dataset + DataLoader tests: determinism, split independence,
// label noise, and loader iteration semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace shrinkbench {
namespace {

TEST(Synthetic, ShapesMatchSpec) {
  SyntheticSpec spec = synth_cifar();
  spec.train_size = 100;
  spec.val_size = 20;
  spec.test_size = 30;
  const DatasetBundle b = make_synthetic(spec);
  EXPECT_EQ(b.train.images.shape(), (Shape{100, 3, 8, 8}));
  EXPECT_EQ(b.val.size(), 20);
  EXPECT_EQ(b.test.size(), 30);
  EXPECT_EQ(b.train.num_classes, 10);
  EXPECT_EQ(b.train.sample_shape(), (Shape{3, 8, 8}));
  EXPECT_EQ(b.train.labels.size(), 100u);
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticSpec spec = synth_cifar(123);
  spec.train_size = 50;
  const DatasetBundle a = make_synthetic(spec);
  const DatasetBundle b = make_synthetic(spec);
  EXPECT_TRUE(ops::allclose(a.train.images, b.train.images, 0, 0));
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec s1 = synth_cifar(1), s2 = synth_cifar(2);
  s1.train_size = s2.train_size = 50;
  const DatasetBundle a = make_synthetic(s1);
  const DatasetBundle b = make_synthetic(s2);
  EXPECT_GT(ops::max_abs_diff(a.train.images, b.train.images), 0.1f);
}

TEST(Synthetic, LabelsCoverAllClasses) {
  SyntheticSpec spec = synth_cifar();
  spec.train_size = 500;
  const DatasetBundle b = make_synthetic(spec);
  std::set<int> seen(b.train.labels.begin(), b.train.labels.end());
  EXPECT_EQ(static_cast<int>(seen.size()), spec.num_classes);
  for (int label : b.train.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, spec.num_classes);
  }
}

TEST(Synthetic, LabelNoiseAffectsOnlyTrainSplit) {
  // Label noise exists to bound train accuracy; val/test labels stay clean
  // (they measure generalization) and must not depend on the knob at all.
  SyntheticSpec clean = synth_cifar(7);
  clean.train_size = 400;
  clean.label_noise = 0.0f;
  SyntheticSpec noisy = clean;
  noisy.label_noise = 0.5f;

  const DatasetBundle a = make_synthetic(clean);
  const DatasetBundle b = make_synthetic(noisy);
  EXPECT_EQ(a.val.labels, b.val.labels);
  EXPECT_EQ(a.test.labels, b.test.labels);
  EXPECT_TRUE(ops::allclose(a.val.images, b.val.images, 0, 0));

  // About half the noisy train labels get redrawn (some redraws repeat the
  // true label, so the differing fraction is a bit under the noise rate).
  int differing = 0;
  for (size_t i = 0; i < a.train.labels.size(); ++i) {
    differing += a.train.labels[i] != b.train.labels[i];
  }
  EXPECT_GT(differing, 100);
  EXPECT_LT(differing, 300);
}

TEST(Synthetic, PresetsResolve) {
  EXPECT_EQ(synthetic_preset("synth-cifar10").num_classes, 10);
  EXPECT_EQ(synthetic_preset("synth-imagenet").num_classes, 20);
  EXPECT_EQ(synthetic_preset("synth-mnist").channels, 1);
  EXPECT_EQ(synthetic_preset("synth-cifar10", 99).seed, 99u);
  EXPECT_THROW(synthetic_preset("cifar10"), std::invalid_argument);
}

TEST(Synthetic, RejectsDegenerateSpec) {
  SyntheticSpec spec;
  spec.num_classes = 1;
  EXPECT_THROW(make_synthetic(spec), std::invalid_argument);
}

// ---- DataLoader ----

DatasetBundle small_bundle() {
  SyntheticSpec spec = synth_cifar(11);
  spec.train_size = 37;  // deliberately not a multiple of the batch size
  spec.val_size = 8;
  spec.test_size = 8;
  return make_synthetic(spec);
}

TEST(DataLoader, CoversEverySampleOncePerEpoch) {
  const DatasetBundle b = small_bundle();
  DataLoader loader(b.train, 8, /*shuffle=*/true, 5);
  Batch batch;
  int64_t total = 0;
  int batches = 0;
  while (loader.next(batch)) {
    total += batch.x.size(0);
    ++batches;
    EXPECT_EQ(batch.x.size(0), static_cast<int64_t>(batch.y.size()));
  }
  EXPECT_EQ(total, 37);
  EXPECT_EQ(batches, 5);  // 4 full + 1 remainder of 5
  EXPECT_EQ(loader.batches_per_epoch(), 5);
}

TEST(DataLoader, ShuffleIsSeedDeterministic) {
  const DatasetBundle b = small_bundle();
  DataLoader l1(b.train, 8, true, 42), l2(b.train, 8, true, 42);
  Batch b1, b2;
  ASSERT_TRUE(l1.next(b1));
  ASSERT_TRUE(l2.next(b2));
  EXPECT_TRUE(ops::allclose(b1.x, b2.x, 0, 0));
  EXPECT_EQ(b1.y, b2.y);
}

TEST(DataLoader, ResetReshuffles) {
  const DatasetBundle b = small_bundle();
  DataLoader loader(b.train, 37, true, 1);
  Batch first, second;
  ASSERT_TRUE(loader.next(first));
  loader.reset();
  ASSERT_TRUE(loader.next(second));
  // Same multiset of samples, (almost surely) different order.
  EXPECT_FALSE(ops::allclose(first.x, second.x, 0, 0));
}

TEST(DataLoader, NoShufflePreservesOrder) {
  const DatasetBundle b = small_bundle();
  DataLoader loader(b.train, 4, false, 0);
  Batch batch;
  ASSERT_TRUE(loader.next(batch));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.y[static_cast<size_t>(i)], b.train.labels[static_cast<size_t>(i)]);
  }
}

TEST(DataLoader, SampleBatchDeterministicInRng) {
  const DatasetBundle b = small_bundle();
  DataLoader loader(b.train, 8, false, 0);
  Rng r1(9), r2(9);
  const Batch b1 = loader.sample_batch(r1);
  const Batch b2 = loader.sample_batch(r2);
  EXPECT_TRUE(ops::allclose(b1.x, b2.x, 0, 0));
  EXPECT_EQ(b1.y, b2.y);
}

TEST(DataLoader, RejectsBadBatchSize) {
  const DatasetBundle b = small_bundle();
  EXPECT_THROW(DataLoader(b.train, 0, false, 0), std::invalid_argument);
}

// ---- augmentation ----

TEST(Augmentation, NoOptionsMeansBitIdenticalBatches) {
  const DatasetBundle b = small_bundle();
  DataLoader plain(b.train, 8, false, 0);
  DataLoader augmented(b.train, 8, false, 0, AugmentOptions{});
  Batch b1, b2;
  ASSERT_TRUE(plain.next(b1));
  ASSERT_TRUE(augmented.next(b2));
  EXPECT_TRUE(ops::allclose(b1.x, b2.x, 0, 0));
}

TEST(Augmentation, NoisePerturbsWithoutChangingLabels) {
  const DatasetBundle b = small_bundle();
  AugmentOptions aug;
  aug.noise_std = 0.2f;
  DataLoader plain(b.train, 16, false, 0);
  DataLoader noisy(b.train, 16, false, 0, aug);
  Batch b1, b2;
  ASSERT_TRUE(plain.next(b1));
  ASSERT_TRUE(noisy.next(b2));
  EXPECT_EQ(b1.y, b2.y);
  const float diff = ops::max_abs_diff(b1.x, b2.x);
  EXPECT_GT(diff, 0.05f);
  EXPECT_LT(diff, 1.5f);  // ~N(0, 0.2) tails
}

TEST(Augmentation, ShiftAndFlipPreserveEnergy) {
  // Toroidal shifts / flips are permutations of pixels: per-image energy
  // is exactly preserved.
  const DatasetBundle b = small_bundle();
  AugmentOptions aug;
  aug.hflip = true;
  aug.max_shift = 2;
  DataLoader plain(b.train, 8, false, 0);
  DataLoader shifted(b.train, 8, false, 0, aug);
  Batch b1, b2;
  ASSERT_TRUE(plain.next(b1));
  ASSERT_TRUE(shifted.next(b2));
  const int64_t sample = numel_of(b.train.sample_shape());
  bool any_changed = false;
  for (int64_t i = 0; i < b1.x.size(0); ++i) {
    double e1 = 0, e2 = 0;
    for (int64_t k = 0; k < sample; ++k) {
      e1 += static_cast<double>(b1.x.at(i * sample + k)) * b1.x.at(i * sample + k);
      e2 += static_cast<double>(b2.x.at(i * sample + k)) * b2.x.at(i * sample + k);
      any_changed |= b1.x.at(i * sample + k) != b2.x.at(i * sample + k);
    }
    EXPECT_NEAR(e1, e2, 1e-2 * std::max(1.0, e1));
  }
  EXPECT_TRUE(any_changed);
}

TEST(Augmentation, DeterministicInSeed) {
  const DatasetBundle b = small_bundle();
  AugmentOptions aug;
  aug.hflip = true;
  aug.max_shift = 1;
  aug.noise_std = 0.1f;
  DataLoader l1(b.train, 8, true, 7, aug), l2(b.train, 8, true, 7, aug);
  Batch b1, b2;
  ASSERT_TRUE(l1.next(b1));
  ASSERT_TRUE(l2.next(b2));
  EXPECT_TRUE(ops::allclose(b1.x, b2.x, 0, 0));
}

}  // namespace
}  // namespace shrinkbench
