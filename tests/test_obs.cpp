// Observability subsystem tests: log-level filtering through the file
// sink, scoped-timer nesting and parent attribution, counter / gauge /
// histogram accumulation, Chrome-trace well-formedness (the emitted JSON
// is actually parsed), and the run-manifest round trip.
//
// Ordering matters: the first test asserts the zero-overhead contract —
// with every SB_* switch off, the Profiler singleton is never
// constructed. It must run before any test that enables profiling, so it
// lives in the first-registered suite of this binary (gtest runs suites
// in registration order).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"
#include "tensor/gemm.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {
namespace {

// ---------------------------------------------------------------------
// Minimal strict JSON parser — enough to verify that the files we emit
// are genuinely well-formed, not just grep-matchable.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            v.string += '?';  // presence is all these tests care about
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        v.string += c;
      }
    }
  }

  JsonValue number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

JsonValue parse_json_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(static_cast<bool>(is)) << "cannot open " << path;
  std::stringstream buf;
  buf << is.rdbuf();
  return JsonParser(buf.str()).parse();
}

void spin_for_at_least(double seconds) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() <
         seconds) {
  }
}

// ---------------------------------------------------------------------
// A_ZeroOverhead — must stay the first-registered suite (see header).
// ---------------------------------------------------------------------

TEST(A_ZeroOverhead, ProfilerNeverConstructedWhenDisabled) {
  if (std::getenv("SB_PROF") || std::getenv("SB_TRACE")) {
    GTEST_SKIP() << "SB_PROF/SB_TRACE set in the environment";
  }
  // Exercise every no-op entry point the hot paths use.
  EXPECT_FALSE(obs::profiling_enabled());
  obs::count("nop.counter", 42);
  obs::set_gauge("nop.gauge", 1.0);
  obs::observe("nop.histogram", 1.0);
  {
    obs::ScopedTimer t("nop.span");
    EXPECT_EQ(t.seconds(), 0.0);
  }
  const obs::MetricsSnapshot snap = obs::snapshot_if_enabled();
  EXPECT_TRUE(snap.counters.empty());
  // The actual zero-overhead guarantee: nothing above touched the
  // singleton.
  EXPECT_FALSE(obs::Profiler::constructed());
}

TEST(A_ZeroOverhead, HotPathsNeverConstructProfilerWhenDisabled) {
  if (std::getenv("SB_PROF") || std::getenv("SB_TRACE")) {
    GTEST_SKIP() << "SB_PROF/SB_TRACE set in the environment";
  }
  // Drive the instrumented hot paths for real — gemm (counters), conv
  // forward/backward (spans + counters + im2col/col2im counters), the
  // workspace arena (grow counter + gauges) — and assert none of their
  // instrumentation touched the singleton. This is the regression guard
  // for "profiling off must be truly zero-overhead on the hot loop".
  Rng rng(3);
  Tensor a({9, 17}), b({17, 5});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  (void)matmul(a, b);

  Conv2d conv("zc", 2, 3, 3, 1, 1, true);
  kaiming_normal(conv.weight().data, rng);
  Tensor x({2, 2, 6, 6}), dy({2, 3, 6, 6});
  rng.fill_normal(x, 0, 1);
  rng.fill_normal(dy, 0, 1);
  (void)conv.forward(x, true);
  (void)conv.backward(dy);

  {
    Workspace::Scope scope;
    (void)Workspace::tls().floats(1024);
  }

  EXPECT_FALSE(obs::Profiler::constructed());
}

// ---------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------

struct LogFixture : ::testing::Test {
  std::string path;
  void SetUp() override {
    path = ::testing::TempDir() + "/sb_obs_log.txt";
    std::filesystem::remove(path);
    obs::set_log_file(path);
  }
  void TearDown() override {
    obs::set_log_file("");
    obs::set_log_level(obs::LogLevel::Info);
    std::filesystem::remove(path);
  }
  std::string slurp() {
    obs::set_log_file("");  // flush + close
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    return buf.str();
  }
};

TEST_F(LogFixture, LevelFilteringDropsBelowThreshold) {
  obs::set_log_level(obs::LogLevel::Warn);
  SB_LOG_TRACE("t", "trace line %d", 1);
  SB_LOG_DEBUG("t", "debug line");
  SB_LOG_INFO("t", "info line");
  SB_LOG_WARN("t", "warn line");
  SB_LOG_ERROR("t", "error line %s", "with arg");

  const std::string text = slurp();
  EXPECT_EQ(text.find("trace line"), std::string::npos);
  EXPECT_EQ(text.find("debug line"), std::string::npos);
  EXPECT_EQ(text.find("info line"), std::string::npos);
  EXPECT_NE(text.find("WARN  t: warn line"), std::string::npos);
  EXPECT_NE(text.find("ERROR t: error line with arg"), std::string::npos);
}

TEST_F(LogFixture, OffSilencesEverything) {
  obs::set_log_level(obs::LogLevel::Off);
  SB_LOG_ERROR("t", "should not appear");
  EXPECT_EQ(slurp(), "");
}

TEST(LogLevelParsing, RecognizesNamesCaseInsensitively) {
  EXPECT_EQ(obs::parse_log_level("trace"), obs::LogLevel::Trace);
  EXPECT_EQ(obs::parse_log_level("DEBUG"), obs::LogLevel::Debug);
  EXPECT_EQ(obs::parse_log_level("Info"), obs::LogLevel::Info);
  EXPECT_EQ(obs::parse_log_level("warning"), obs::LogLevel::Warn);
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::Error);
  EXPECT_EQ(obs::parse_log_level("off"), obs::LogLevel::Off);
  EXPECT_EQ(obs::parse_log_level("bogus", obs::LogLevel::Warn), obs::LogLevel::Warn);
}

// ---------------------------------------------------------------------
// Profiler: spans, counters, histograms, trace. Everything below runs
// after A_ZeroOverhead and may construct the singleton.
// ---------------------------------------------------------------------

struct ProfilerFixture : ::testing::Test {
  void SetUp() override {
    obs::set_profiling_enabled(true);
    obs::Profiler::instance().reset();
  }
  void TearDown() override {
    obs::set_trace_path("");
    obs::Profiler::instance().reset();
    obs::set_profiling_enabled(false);
  }
};

TEST_F(ProfilerFixture, TimerNestingAttributesChildTimeToParent) {
  {
    obs::ScopedTimer outer("outer");
    spin_for_at_least(0.002);
    {
      obs::ScopedTimer inner("inner");
      spin_for_at_least(0.002);
    }
    {
      obs::ScopedTimer inner("inner");
      spin_for_at_least(0.002);
    }
  }
  const auto snap = obs::Profiler::instance().snapshot();
  ASSERT_TRUE(snap.spans.count("outer")) << "missing root span";
  ASSERT_TRUE(snap.spans.count("outer/inner")) << "child not keyed by parent path";

  const obs::SpanStats& outer = snap.spans.at("outer");
  const obs::SpanStats& inner = snap.spans.at("outer/inner");
  EXPECT_EQ(outer.count, 1);
  EXPECT_EQ(inner.count, 2);
  // Parent attribution: outer's child time is exactly the inner spans'
  // total, its self time covers the rest.
  EXPECT_NEAR(outer.child_seconds, inner.total_seconds, 1e-9);
  EXPECT_GE(outer.total_seconds, inner.total_seconds);
  EXPECT_GT(outer.self_seconds(), 0.0);
}

TEST_F(ProfilerFixture, SiblingSpansGetDistinctPaths) {
  {
    obs::ScopedTimer a("phase_a");
    spin_for_at_least(0.001);
  }
  {
    obs::ScopedTimer b("phase_b");
    obs::ScopedTimer leaf("leaf");
    spin_for_at_least(0.001);
  }
  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_TRUE(snap.spans.count("phase_a"));
  EXPECT_TRUE(snap.spans.count("phase_b"));
  EXPECT_TRUE(snap.spans.count("phase_b/leaf"));
  EXPECT_FALSE(snap.spans.count("phase_a/leaf"));
}

TEST_F(ProfilerFixture, CountersGaugesHistogramsAccumulate) {
  obs::count("c.calls");
  obs::count("c.calls");
  obs::count("c.calls", 3);
  obs::set_gauge("g.last", 1.5);
  obs::set_gauge("g.last", 2.5);  // gauges overwrite
  obs::observe("h.ms", 1.0);
  obs::observe("h.ms", 3.0);
  obs::observe("h.ms", 2.0);

  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("c.calls"), 5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g.last"), 2.5);
  const obs::HistogramStats& h = snap.histograms.at("h.ms");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum, 6.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST_F(ProfilerFixture, TraceJsonIsWellFormedAndContainsSpans) {
  const std::string path = ::testing::TempDir() + "/sb_obs_trace.json";
  obs::set_trace_path(path);
  {
    obs::ScopedTimer outer("trace_outer");
    obs::ScopedTimer inner("trace_inner \"quoted\"");
    spin_for_at_least(0.001);
  }
  ASSERT_TRUE(obs::Profiler::instance().write_trace(path));

  const JsonValue root = parse_json_file(path);  // throws if malformed
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  ASSERT_TRUE(root.has("traceEvents"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::Array);
  ASSERT_GE(events.array.size(), 2u);

  bool saw_outer = false, saw_inner = false;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::Object);
    ASSERT_TRUE(e.has("name") && e.has("ph") && e.has("ts") && e.has("dur"));
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_GE(e.at("dur").number, 0.0);
    saw_outer |= e.at("name").string == "trace_outer";
    saw_inner |= e.at("name").string.find("trace_inner") == 0;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  std::filesystem::remove(path);
}

TEST_F(ProfilerFixture, MetricsJsonIsWellFormed) {
  obs::count("mj.counter", 7);
  obs::observe("mj.hist", 4.0);
  {
    obs::ScopedTimer t("mj_span");
  }
  const std::string json = obs::metrics_json(obs::Profiler::instance().snapshot());
  const JsonValue root = JsonParser(json).parse();
  EXPECT_DOUBLE_EQ(root.at("counters").at("mj.counter").number, 7.0);
  EXPECT_DOUBLE_EQ(root.at("histograms").at("mj.hist").at("count").number, 1.0);
  EXPECT_TRUE(root.at("spans").has("mj_span"));
}

// ---------------------------------------------------------------------
// Run manifest
// ---------------------------------------------------------------------

TEST_F(ProfilerFixture, ManifestRoundTrip) {
  obs::count("manifest.counter", 11);

  ExperimentResult r;
  r.config.dataset = "synth-mnist";
  r.config.arch = "lenet-300-100";
  r.config.strategy = "global-weight";
  r.config.target_compression = 4.0;
  r.config.run_seed = 7;
  r.post_top1 = 0.91;
  r.compression = 3.98;
  r.finetune_epochs = 3;
  r.phases.pretrain = 1.25;
  r.phases.prune = 0.03125;
  r.phases.finetune = 2.5;
  r.phases.eval = 0.5;
  r.seconds = 4.5;

  const std::string path = ::testing::TempDir() + "/sb_obs_manifest.json";
  write_run_manifest(path, "unit_test_bench", {r});

  const JsonValue root = parse_json_file(path);
  EXPECT_EQ(root.at("schema").string, "shrinkbench.run_manifest/v1");
  EXPECT_EQ(root.at("bench").string, "unit_test_bench");
  EXPECT_FALSE(root.at("git").string.empty());

  ASSERT_EQ(root.at("results").array.size(), 1u);
  const JsonValue& entry = root.at("results").array[0];
  EXPECT_EQ(entry.at("fingerprint").string, config_fingerprint(r.config));
  EXPECT_EQ(entry.at("arch").string, "lenet-300-100");
  EXPECT_DOUBLE_EQ(entry.at("run_seed").number, 7.0);
  // Powers of two round-trip exactly through %.17g.
  EXPECT_DOUBLE_EQ(entry.at("phases").at("pretrain").number, 1.25);
  EXPECT_DOUBLE_EQ(entry.at("phases").at("prune").number, 0.03125);
  EXPECT_DOUBLE_EQ(entry.at("phases").at("finetune").number, 2.5);
  EXPECT_DOUBLE_EQ(entry.at("phases").at("eval").number, 0.5);
  EXPECT_DOUBLE_EQ(entry.at("phases").at("total").number, r.phases.total());

  // The counter snapshot taken while profiling was on rides along.
  EXPECT_DOUBLE_EQ(root.at("metrics").at("counters").at("manifest.counter").number, 11.0);
  std::filesystem::remove(path);
}

TEST(ManifestWithoutProfiling, EmitsEmptyMetrics) {
  obs::set_profiling_enabled(false);
  ExperimentResult r;
  const std::string path = ::testing::TempDir() + "/sb_obs_manifest_off.json";
  write_run_manifest(path, "off_bench", {r});
  const JsonValue root = parse_json_file(path);
  EXPECT_EQ(root.at("schema").string, "shrinkbench.run_manifest/v1");
  EXPECT_EQ(root.at("results").array.size(), 1u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace shrinkbench
