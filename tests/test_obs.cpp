// Observability subsystem tests: log-level filtering through the file
// sink, scoped-timer nesting and parent attribution, counter / gauge /
// histogram accumulation, Chrome-trace well-formedness (the emitted JSON
// is actually parsed), and the run-manifest round trip.
//
// Ordering matters: the first test asserts the zero-overhead contract —
// with every SB_* switch off, the Profiler singleton is never
// constructed. It must run before any test that enables profiling, so it
// lives in the first-registered suite of this binary (gtest runs suites
// in registration order).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "obs/telemetry.hpp"
#include "tensor/gemm.hpp"
#include "tensor/workspace.hpp"

namespace shrinkbench {
namespace {

// ---------------------------------------------------------------------
// Minimal strict JSON parser — enough to verify that the files we emit
// are genuinely well-formed, not just grep-matchable.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            v.string += '?';  // presence is all these tests care about
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        v.string += c;
      }
    }
  }

  JsonValue number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

JsonValue parse_json_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(static_cast<bool>(is)) << "cannot open " << path;
  std::stringstream buf;
  buf << is.rdbuf();
  return JsonParser(buf.str()).parse();
}

void spin_for_at_least(double seconds) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() <
         seconds) {
  }
}

// ---------------------------------------------------------------------
// A_ZeroOverhead — must stay the first-registered suite (see header).
// ---------------------------------------------------------------------

TEST(A_ZeroOverhead, ProfilerNeverConstructedWhenDisabled) {
  if (std::getenv("SB_PROF") || std::getenv("SB_TRACE")) {
    GTEST_SKIP() << "SB_PROF/SB_TRACE set in the environment";
  }
  // Exercise every no-op entry point the hot paths use.
  EXPECT_FALSE(obs::profiling_enabled());
  obs::count("nop.counter", 42);
  obs::set_gauge("nop.gauge", 1.0);
  obs::observe("nop.histogram", 1.0);
  {
    obs::ScopedTimer t("nop.span");
    EXPECT_EQ(t.seconds(), 0.0);
  }
  const obs::MetricsSnapshot snap = obs::snapshot_if_enabled();
  EXPECT_TRUE(snap.counters.empty());
  // The actual zero-overhead guarantee: nothing above touched the
  // singleton.
  EXPECT_FALSE(obs::Profiler::constructed());
}

TEST(A_ZeroOverhead, TelemetryNeverConstructedWhenDisabled) {
  if (std::getenv("SB_TELEMETRY") || std::getenv("SB_STATUS_FILE") ||
      std::getenv("SB_TELEMETRY_JSONL")) {
    GTEST_SKIP() << "SB_TELEMETRY/SB_STATUS_FILE/SB_TELEMETRY_JSONL set in the environment";
  }
  // Same contract as the profiler, extended to the telemetry subsystem:
  // every status-board hook sprinkled through train/sweep must stay a
  // single branch while the switches are off.
  EXPECT_FALSE(obs::telemetry_enabled());
  obs::status_set_phase("nop");
  obs::status_set_stage("nop");
  obs::status_set_progress(1, 2, 3.0);
  obs::status_set_epoch(1, 0.5, 0.9);
  obs::status_set_failures(0, 0);
  obs::status_add_anomalies(1);
  obs::status_add_retries(1);
  obs::write_status_now();
  EXPECT_FALSE(obs::Telemetry::constructed());
}

TEST(A_ZeroOverhead, HotPathsNeverConstructProfilerWhenDisabled) {
  if (std::getenv("SB_PROF") || std::getenv("SB_TRACE")) {
    GTEST_SKIP() << "SB_PROF/SB_TRACE set in the environment";
  }
  // Drive the instrumented hot paths for real — gemm (counters), conv
  // forward/backward (spans + counters + im2col/col2im counters), the
  // workspace arena (grow counter + gauges) — and assert none of their
  // instrumentation touched the singleton. This is the regression guard
  // for "profiling off must be truly zero-overhead on the hot loop".
  Rng rng(3);
  Tensor a({9, 17}), b({17, 5});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  (void)matmul(a, b);

  Conv2d conv("zc", 2, 3, 3, 1, 1, true);
  kaiming_normal(conv.weight().data, rng);
  Tensor x({2, 2, 6, 6}), dy({2, 3, 6, 6});
  rng.fill_normal(x, 0, 1);
  rng.fill_normal(dy, 0, 1);
  (void)conv.forward(x, true);
  (void)conv.backward(dy);

  {
    Workspace::Scope scope;
    (void)Workspace::tls().floats(1024);
  }

  EXPECT_FALSE(obs::Profiler::constructed());
  // The matmul above went through the thread pool's telemetry-gated
  // accounting branch; with switches off it must not have constructed
  // the telemetry singleton either.
  EXPECT_FALSE(obs::Telemetry::constructed());
}

// ---------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------

struct LogFixture : ::testing::Test {
  std::string path;
  void SetUp() override {
    path = ::testing::TempDir() + "/sb_obs_log.txt";
    std::filesystem::remove(path);
    obs::set_log_file(path);
  }
  void TearDown() override {
    obs::set_log_file("");
    obs::set_log_level(obs::LogLevel::Info);
    std::filesystem::remove(path);
  }
  std::string slurp() {
    obs::set_log_file("");  // flush + close
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    return buf.str();
  }
};

TEST_F(LogFixture, LevelFilteringDropsBelowThreshold) {
  obs::set_log_level(obs::LogLevel::Warn);
  SB_LOG_TRACE("t", "trace line %d", 1);
  SB_LOG_DEBUG("t", "debug line");
  SB_LOG_INFO("t", "info line");
  SB_LOG_WARN("t", "warn line");
  SB_LOG_ERROR("t", "error line %s", "with arg");

  const std::string text = slurp();
  EXPECT_EQ(text.find("trace line"), std::string::npos);
  EXPECT_EQ(text.find("debug line"), std::string::npos);
  EXPECT_EQ(text.find("info line"), std::string::npos);
  EXPECT_NE(text.find("WARN  t: warn line"), std::string::npos);
  EXPECT_NE(text.find("ERROR t: error line with arg"), std::string::npos);
}

TEST_F(LogFixture, OffSilencesEverything) {
  obs::set_log_level(obs::LogLevel::Off);
  SB_LOG_ERROR("t", "should not appear");
  EXPECT_EQ(slurp(), "");
}

TEST(LogLevelParsing, RecognizesNamesCaseInsensitively) {
  EXPECT_EQ(obs::parse_log_level("trace"), obs::LogLevel::Trace);
  EXPECT_EQ(obs::parse_log_level("DEBUG"), obs::LogLevel::Debug);
  EXPECT_EQ(obs::parse_log_level("Info"), obs::LogLevel::Info);
  EXPECT_EQ(obs::parse_log_level("warning"), obs::LogLevel::Warn);
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::Error);
  EXPECT_EQ(obs::parse_log_level("off"), obs::LogLevel::Off);
  EXPECT_EQ(obs::parse_log_level("bogus", obs::LogLevel::Warn), obs::LogLevel::Warn);
}

// ---------------------------------------------------------------------
// Profiler: spans, counters, histograms, trace. Everything below runs
// after A_ZeroOverhead and may construct the singleton.
// ---------------------------------------------------------------------

struct ProfilerFixture : ::testing::Test {
  void SetUp() override {
    obs::set_profiling_enabled(true);
    obs::Profiler::instance().reset();
  }
  void TearDown() override {
    obs::set_trace_path("");
    obs::Profiler::instance().reset();
    obs::set_profiling_enabled(false);
  }
};

TEST_F(ProfilerFixture, TimerNestingAttributesChildTimeToParent) {
  {
    obs::ScopedTimer outer("outer");
    spin_for_at_least(0.002);
    {
      obs::ScopedTimer inner("inner");
      spin_for_at_least(0.002);
    }
    {
      obs::ScopedTimer inner("inner");
      spin_for_at_least(0.002);
    }
  }
  const auto snap = obs::Profiler::instance().snapshot();
  ASSERT_TRUE(snap.spans.count("outer")) << "missing root span";
  ASSERT_TRUE(snap.spans.count("outer/inner")) << "child not keyed by parent path";

  const obs::SpanStats& outer = snap.spans.at("outer");
  const obs::SpanStats& inner = snap.spans.at("outer/inner");
  EXPECT_EQ(outer.count, 1);
  EXPECT_EQ(inner.count, 2);
  // Parent attribution: outer's child time is exactly the inner spans'
  // total, its self time covers the rest.
  EXPECT_NEAR(outer.child_seconds, inner.total_seconds, 1e-9);
  EXPECT_GE(outer.total_seconds, inner.total_seconds);
  EXPECT_GT(outer.self_seconds(), 0.0);
}

TEST_F(ProfilerFixture, SiblingSpansGetDistinctPaths) {
  {
    obs::ScopedTimer a("phase_a");
    spin_for_at_least(0.001);
  }
  {
    obs::ScopedTimer b("phase_b");
    obs::ScopedTimer leaf("leaf");
    spin_for_at_least(0.001);
  }
  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_TRUE(snap.spans.count("phase_a"));
  EXPECT_TRUE(snap.spans.count("phase_b"));
  EXPECT_TRUE(snap.spans.count("phase_b/leaf"));
  EXPECT_FALSE(snap.spans.count("phase_a/leaf"));
}

TEST_F(ProfilerFixture, CountersGaugesHistogramsAccumulate) {
  obs::count("c.calls");
  obs::count("c.calls");
  obs::count("c.calls", 3);
  obs::set_gauge("g.last", 1.5);
  obs::set_gauge("g.last", 2.5);  // gauges overwrite
  obs::observe("h.ms", 1.0);
  obs::observe("h.ms", 3.0);
  obs::observe("h.ms", 2.0);

  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("c.calls"), 5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g.last"), 2.5);
  const obs::HistogramStats& h = snap.histograms.at("h.ms");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum, 6.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST_F(ProfilerFixture, TraceJsonIsWellFormedAndContainsSpans) {
  const std::string path = ::testing::TempDir() + "/sb_obs_trace.json";
  obs::set_trace_path(path);
  {
    obs::ScopedTimer outer("trace_outer");
    obs::ScopedTimer inner("trace_inner \"quoted\"");
    spin_for_at_least(0.001);
  }
  ASSERT_TRUE(obs::Profiler::instance().write_trace(path));

  const JsonValue root = parse_json_file(path);  // throws if malformed
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  ASSERT_TRUE(root.has("traceEvents"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::Array);
  ASSERT_GE(events.array.size(), 2u);

  bool saw_outer = false, saw_inner = false;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::Object);
    ASSERT_TRUE(e.has("name") && e.has("ph") && e.has("ts") && e.has("dur"));
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_GE(e.at("dur").number, 0.0);
    saw_outer |= e.at("name").string == "trace_outer";
    saw_inner |= e.at("name").string.find("trace_inner") == 0;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  std::filesystem::remove(path);
}

TEST_F(ProfilerFixture, MetricsJsonIsWellFormed) {
  obs::count("mj.counter", 7);
  obs::observe("mj.hist", 4.0);
  {
    obs::ScopedTimer t("mj_span");
  }
  const std::string json = obs::metrics_json(obs::Profiler::instance().snapshot());
  const JsonValue root = JsonParser(json).parse();
  EXPECT_DOUBLE_EQ(root.at("counters").at("mj.counter").number, 7.0);
  EXPECT_DOUBLE_EQ(root.at("histograms").at("mj.hist").at("count").number, 1.0);
  EXPECT_TRUE(root.at("spans").has("mj_span"));
}

// ---------------------------------------------------------------------
// Run manifest
// ---------------------------------------------------------------------

TEST_F(ProfilerFixture, ManifestRoundTrip) {
  obs::count("manifest.counter", 11);

  ExperimentResult r;
  r.config.dataset = "synth-mnist";
  r.config.arch = "lenet-300-100";
  r.config.strategy = "global-weight";
  r.config.target_compression = 4.0;
  r.config.run_seed = 7;
  r.post_top1 = 0.91;
  r.compression = 3.98;
  r.finetune_epochs = 3;
  r.phases.pretrain = 1.25;
  r.phases.prune = 0.03125;
  r.phases.finetune = 2.5;
  r.phases.eval = 0.5;
  r.seconds = 4.5;

  const std::string path = ::testing::TempDir() + "/sb_obs_manifest.json";
  write_run_manifest(path, "unit_test_bench", {r});

  const JsonValue root = parse_json_file(path);
  EXPECT_EQ(root.at("schema").string, "shrinkbench.run_manifest/v1");
  EXPECT_EQ(root.at("bench").string, "unit_test_bench");
  EXPECT_FALSE(root.at("git").string.empty());

  ASSERT_EQ(root.at("results").array.size(), 1u);
  const JsonValue& entry = root.at("results").array[0];
  EXPECT_EQ(entry.at("fingerprint").string, config_fingerprint(r.config));
  EXPECT_EQ(entry.at("arch").string, "lenet-300-100");
  EXPECT_DOUBLE_EQ(entry.at("run_seed").number, 7.0);
  // Powers of two round-trip exactly through %.17g.
  EXPECT_DOUBLE_EQ(entry.at("phases").at("pretrain").number, 1.25);
  EXPECT_DOUBLE_EQ(entry.at("phases").at("prune").number, 0.03125);
  EXPECT_DOUBLE_EQ(entry.at("phases").at("finetune").number, 2.5);
  EXPECT_DOUBLE_EQ(entry.at("phases").at("eval").number, 0.5);
  EXPECT_DOUBLE_EQ(entry.at("phases").at("total").number, r.phases.total());

  // The counter snapshot taken while profiling was on rides along.
  EXPECT_DOUBLE_EQ(root.at("metrics").at("counters").at("manifest.counter").number, 11.0);
  std::filesystem::remove(path);
}

TEST(ManifestWithoutProfiling, EmitsEmptyMetrics) {
  obs::set_profiling_enabled(false);
  ExperimentResult r;
  const std::string path = ::testing::TempDir() + "/sb_obs_manifest_off.json";
  write_run_manifest(path, "off_bench", {r});
  const JsonValue root = parse_json_file(path);
  EXPECT_EQ(root.at("schema").string, "shrinkbench.run_manifest/v1");
  EXPECT_EQ(root.at("results").array.size(), 1u);
  std::filesystem::remove(path);
}

TEST(ManifestHost, RecordsMachineAndEffectiveKnobs) {
  ExperimentResult r;
  const std::string path = ::testing::TempDir() + "/sb_obs_manifest_host.json";
  write_run_manifest(path, "host_bench", {r});
  const JsonValue root = parse_json_file(path);
  ASSERT_TRUE(root.has("host"));
  const JsonValue& host = root.at("host");
  EXPECT_FALSE(host.at("hostname").string.empty());
  EXPECT_GE(host.at("cpu_cores").number, 1.0);
  EXPECT_GE(host.at("threads").number, 1.0);
  EXPECT_FALSE(host.at("simd").string.empty());
  // started (library load) <= created (manifest write), both ISO-8601 Z.
  const std::string& started = root.at("started_utc").string;
  const std::string& created = root.at("created_utc").string;
  ASSERT_EQ(started.size(), 20u);
  ASSERT_EQ(created.size(), 20u);
  EXPECT_EQ(started.back(), 'Z');
  EXPECT_LE(started, created);  // lexicographic == chronological for ISO-8601
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Streaming quantile histogram: the <5% relative-error contract, checked
// against exact (sorted) quantiles on three distribution shapes.
// ---------------------------------------------------------------------

double exact_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

void expect_quantiles_close(const std::vector<double>& values, const char* label) {
  obs::QuantileHistogram hist;
  for (const double v : values) hist.observe(v);
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double approx = hist.quantile(q);
    ASSERT_GT(exact, 0.0);
    EXPECT_NEAR(approx / exact, 1.0, 0.05)
        << label << " q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(QuantileHistogram, UniformWithinFivePercent) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(1.0, 100.0);
  std::vector<double> values(20000);
  for (double& v : values) v = dist(rng);
  expect_quantiles_close(values, "uniform");
}

TEST(QuantileHistogram, LognormalWithinFivePercent) {
  // Heavy right tail — the shape epoch/batch latencies actually have.
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  std::vector<double> values(20000);
  for (double& v : values) v = dist(rng);
  expect_quantiles_close(values, "lognormal");
}

TEST(QuantileHistogram, PointMassWithinFivePercent) {
  std::vector<double> values(5000, 0.0375);  // all mass in one bucket
  expect_quantiles_close(values, "point-mass");
}

TEST(QuantileHistogram, UnderflowValuesReportTheirMinimum) {
  obs::QuantileHistogram hist;
  hist.observe(0.0);
  hist.observe(-3.0);
  hist.observe(0.0);
  EXPECT_EQ(hist.count(), 3);
  // Everything sits in the underflow bucket; quantiles answer with the
  // running minimum instead of inventing a positive value.
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), -3.0);
}

TEST(QuantileHistogram, EmptyQueriesReturnZero) {
  const obs::QuantileHistogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
}

TEST_F(ProfilerFixture, SnapshotFillsHistogramQuantiles) {
  for (int i = 1; i <= 100; ++i) obs::observe("q.ms", static_cast<double>(i));
  const auto snap = obs::Profiler::instance().snapshot();
  const obs::HistogramStats& h = snap.histograms.at("q.ms");
  EXPECT_NEAR(h.p50 / 50.0, 1.0, 0.06);
  EXPECT_NEAR(h.p90 / 90.0, 1.0, 0.06);
  EXPECT_NEAR(h.p99 / 99.0, 1.0, 0.06);
  // And they ride into metrics_json.
  const JsonValue root = JsonParser(obs::metrics_json(snap)).parse();
  EXPECT_GT(root.at("histograms").at("q.ms").at("p50").number, 0.0);
}

// ---------------------------------------------------------------------
// Resource sampling
// ---------------------------------------------------------------------

TEST(ResourceSample, ReportsLiveProcessNumbers) {
  const obs::ResourceSample s = obs::sample_resources();
#if defined(_WIN32)
  GTEST_SKIP() << "resource sampling is POSIX-only";
#endif
  ASSERT_TRUE(s.valid);
  EXPECT_GT(s.rss_mb, 0.0);
  EXPECT_GE(s.peak_rss_mb, s.rss_mb * 0.5);  // HWM can lag RSS slightly
  EXPECT_GE(s.user_cpu_seconds + s.sys_cpu_seconds, 0.0);
  EXPECT_GE(s.os_threads, 1);
  EXPECT_FALSE(obs::hostname().empty());
  EXPECT_GE(obs::cpu_cores(), 1);
  EXPECT_GT(obs::process_id(), 0);
}

// ---------------------------------------------------------------------
// Telemetry registry, heartbeat, and JSONL stream. These construct the
// singleton, so they run after the A_ZeroOverhead suite.
// ---------------------------------------------------------------------

struct TelemetryFixture : ::testing::Test {
  void SetUp() override {
    obs::set_telemetry_hz(0);  // no background thread: ticks are manual
    obs::set_telemetry_enabled(true);
    obs::Telemetry::instance().reset();
  }
  void TearDown() override {
    obs::set_status_path("");
    obs::Telemetry::instance().reset();
    obs::set_telemetry_enabled(false);
  }
};

TEST_F(TelemetryFixture, RecordAccumulatesSeriesInOrder) {
  obs::Telemetry& t = obs::Telemetry::instance();
  t.record("test.loss", 1.0);
  t.record("test.loss", 0.5);
  t.record("test.acc", 0.9);
  const auto series = t.series();
  ASSERT_TRUE(series.count("test.loss"));
  ASSERT_EQ(series.at("test.loss").size(), 2u);
  EXPECT_DOUBLE_EQ(series.at("test.loss")[0].value, 1.0);
  EXPECT_DOUBLE_EQ(series.at("test.loss")[1].value, 0.5);
  EXPECT_LE(series.at("test.loss")[0].t, series.at("test.loss")[1].t);
  ASSERT_EQ(series.at("test.acc").size(), 1u);
}

TEST_F(TelemetryFixture, SampleOnceCollectsResourceSeries) {
  obs::Telemetry& t = obs::Telemetry::instance();
  t.sample_once();
  t.sample_once();
  const auto series = t.series();
  ASSERT_TRUE(series.count("proc.rss_mb"));
  ASSERT_EQ(series.at("proc.rss_mb").size(), 2u);
  EXPECT_GT(series.at("proc.rss_mb")[0].value, 0.0);
  // Monotonic timestamps within the series.
  EXPECT_LE(series.at("proc.rss_mb")[0].t, series.at("proc.rss_mb")[1].t);
  ASSERT_TRUE(series.count("proc.cpu_user_s"));
}

TEST_F(TelemetryFixture, HeartbeatRoundTripsThroughStatusJson) {
  const std::string path = ::testing::TempDir() + "/sb_obs_status.json";
  obs::set_status_path(path);

  obs::status_set_phase("sweep");
  obs::status_set_stage("finetune");
  obs::status_set_progress(3, 12, 42.0);
  obs::status_set_epoch(5, 0.25, 0.875);
  obs::status_set_failures(1, 2);
  obs::status_add_anomalies(2);
  obs::status_add_anomalies(1);
  obs::status_add_retries(1);
  obs::write_status_now();

  const JsonValue root = parse_json_file(path);
  EXPECT_EQ(root.at("schema").string, "shrinkbench.status/v1");
  EXPECT_EQ(root.at("phase").string, "sweep");
  EXPECT_EQ(root.at("stage").string, "finetune");
  EXPECT_FALSE(root.at("host").string.empty());
  EXPECT_GT(root.at("pid").number, 0.0);

  const JsonValue& progress = root.at("progress");
  EXPECT_DOUBLE_EQ(progress.at("done").number, 3.0);
  EXPECT_DOUBLE_EQ(progress.at("total").number, 12.0);
  EXPECT_DOUBLE_EQ(progress.at("fraction").number, 0.25);
  EXPECT_DOUBLE_EQ(progress.at("eta_seconds").number, 42.0);

  const JsonValue& train = root.at("train");
  EXPECT_DOUBLE_EQ(train.at("epoch").number, 5.0);
  EXPECT_DOUBLE_EQ(train.at("train_loss").number, 0.25);
  EXPECT_DOUBLE_EQ(train.at("val_top1").number, 0.875);

  const JsonValue& counts = root.at("counts");
  EXPECT_DOUBLE_EQ(counts.at("anomalies").number, 3.0);
  EXPECT_DOUBLE_EQ(counts.at("retries").number, 1.0);
  EXPECT_DOUBLE_EQ(counts.at("failures").number, 1.0);
  EXPECT_DOUBLE_EQ(counts.at("cache_hits").number, 2.0);

#if !defined(_WIN32)
  EXPECT_GT(root.at("resources").at("rss_mb").number, 0.0);
#endif
  std::filesystem::remove(path);
}

TEST_F(TelemetryFixture, StatusFileIsRewrittenAtomicallyEachTick) {
  const std::string path = ::testing::TempDir() + "/sb_obs_status_tick.json";
  obs::set_status_path(path);
  for (int tick = 0; tick < 5; ++tick) {
    obs::status_set_progress(static_cast<size_t>(tick), 5, -1.0);
    obs::Telemetry::instance().sample_once();
    // Every read between ticks must see complete, parseable JSON.
    const JsonValue root = parse_json_file(path);
    EXPECT_DOUBLE_EQ(root.at("progress").at("done").number, static_cast<double>(tick));
  }
  std::filesystem::remove(path);
}

TEST_F(TelemetryFixture, SeriesJsonlParsesAndIsMonotonic) {
  obs::Telemetry& t = obs::Telemetry::instance();
  t.record("jl.metric", 1.5);
  t.sample_once();
  t.record("jl.metric", 2.5);
  t.sample_once();

  std::istringstream lines(t.series_jsonl());
  std::string line;
  size_t n = 0;
  std::map<std::string, double> last_t;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const JsonValue v = JsonParser(line).parse();
    ASSERT_TRUE(v.has("t") && v.has("series") && v.has("value"));
    const std::string& name = v.at("series").string;
    if (last_t.count(name)) EXPECT_GE(v.at("t").number, last_t[name]) << name;
    last_t[name] = v.at("t").number;
    ++n;
  }
  EXPECT_GE(n, 4u);  // 2 manual points + >= 1 sampled series x 2 ticks
  ASSERT_TRUE(last_t.count("jl.metric"));

  const std::string path = ::testing::TempDir() + "/sb_obs_series.jsonl";
  ASSERT_TRUE(t.write_series_jsonl(path));
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  std::filesystem::remove(path);
}

TEST_F(TelemetryFixture, BackgroundSamplerProducesTicks) {
  obs::set_telemetry_hz(50.0);
  obs::Telemetry& t = obs::Telemetry::instance();
  t.start_sampler();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  size_t points = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto series = t.series();
    const auto it = series.find("proc.rss_mb");
    points = it != series.end() ? it->second.size() : 0;
    if (points >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  t.stop_sampler();
  EXPECT_GE(points, 2u);
  obs::set_telemetry_hz(0);
}

TEST_F(TelemetryFixture, PoolSamplerReportsUtilization) {
  // The threadpool TU registered its sampler at static init; drive a
  // parallel job while telemetry is on, then tick once.
  Rng rng(5);
  Tensor a({64, 64}), b({64, 64});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  (void)matmul(a, b);
  obs::Telemetry& t = obs::Telemetry::instance();
  t.sample_once();
  const auto series = t.series();
  ASSERT_TRUE(series.count("pool.jobs")) << "pool sampler not registered";
  EXPECT_GE(series.at("pool.jobs").back().value, 0.0);
  ASSERT_TRUE(series.count("pool.busy_frac"));
}

TEST_F(TelemetryFixture, SampleOnceMirrorsProfilerCounters) {
  obs::set_profiling_enabled(true);
  obs::Profiler::instance().reset();
  obs::count("mirror.me", 3);
  obs::Telemetry::instance().sample_once();
  const auto series = obs::Telemetry::instance().series();
  ASSERT_TRUE(series.count("counter.mirror.me"));
  EXPECT_DOUBLE_EQ(series.at("counter.mirror.me").back().value, 3.0);
  obs::Profiler::instance().reset();
  obs::set_profiling_enabled(false);
}

// ---------------------------------------------------------------------
// JSON-lines log mode
// ---------------------------------------------------------------------

TEST(LogJson, EmitsOneParseableObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/sb_obs_log_json.txt";
  std::filesystem::remove(path);
  obs::set_log_file(path);
  obs::set_log_json(true);
  SB_LOG_WARN("jsontag", "quoted \"message\" with\nnewline");
  SB_LOG_ERROR("jsontag", "count=%d", 7);
  obs::set_log_json(false);
  obs::set_log_file("");

  std::ifstream is(path);
  std::string line;
  size_t n = 0;
  while (std::getline(is, line)) {
    const JsonValue v = JsonParser(line).parse();  // throws if not one object per line
    ASSERT_TRUE(v.has("t") && v.has("level") && v.has("tag") && v.has("msg"));
    EXPECT_EQ(v.at("tag").string, "jsontag");
    ++n;
  }
  ASSERT_EQ(n, 2u);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// The shared obs JSON parser (used by sb_top) — spot checks
// ---------------------------------------------------------------------

TEST(ObsJsonParse, RoundTripsEmittedJson) {
  const obs::JsonValue v =
      obs::json_parse("{\"a\": [1, 2.5, true, null], \"b\": {\"c\": \"x\\\"y\"}}");
  EXPECT_DOUBLE_EQ(v.at("a").array[1].number, 2.5);
  EXPECT_EQ(v.at("b").at("c").string, "x\"y");
  EXPECT_DOUBLE_EQ(v.num_or("missing", -1.0), -1.0);
  EXPECT_THROW(obs::json_parse("{\"torn\": "), std::runtime_error);
  EXPECT_THROW(obs::json_parse("{} trailing"), std::runtime_error);
}

}  // namespace
}  // namespace shrinkbench
