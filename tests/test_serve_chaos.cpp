// Serving chaos suite: the overload/failure robustness layer under
// deterministic fault injection.
//
// The anchor invariant is exactly-once fulfillment: every future submit()
// hands out is fulfilled exactly once — with a value or an exception —
// under every fault site (serve.exec_throw / serve.exec_nan /
// serve.worker_stall) crossed with every overload policy (Block / Reject
// / DropOldest), including a shutdown drain racing an active fault.
// std::promise makes double-fulfillment throw, so a clean run *is* the
// at-most-once proof; the submitted == completed + failed accounting
// closes the at-least-once side.
//
// Also covered here: in-queue deadline expiry, circuit breaker
// trip -> fallback -> half-open probe -> close, the watchdog stall path
// (including the degraded heartbeat mark and its recovery), the
// serve.queue_depth gauge regression (must return to 0 after a drain),
// failed-request latency/requests accounting, and submit() racing
// shutdown() while blocked on a full queue.
//
// Registered in CMake under SB_THREADS={1,4} as well as the default so
// the queue/batcher/breaker locking is exercised with both an inline
// pool and real kernel fan-out.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "nn/init.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "obs/io.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "serve/executor.hpp"
#include "serve/server.hpp"
#include "tensor/rng.hpp"

namespace shrinkbench {
namespace {

using serve::BreakerState;
using serve::DeadlineExceeded;
using serve::ExecMode;
using serve::InferenceServer;
using serve::Overloaded;
using serve::OverloadPolicy;
using serve::ServerOptions;
using serve::ServerStats;

ModelPtr tiny_model(Rng& rng) {
  auto m = std::make_unique<Sequential>("tiny");
  m->emplace<Linear>("fc", 8, 4);
  init_model(*m, rng);
  return m;
}

Tensor random_sample(Rng& rng) {
  Tensor s({8});
  rng.fill_normal(s, 0, 1);
  return s;
}

// Every test runs with profiling on (counters/gauges are part of the
// contract under test) and leaves no fault spec or profiler state behind.
class ServeChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_fault_spec("");
    obs::set_profiling_enabled(true);
    obs::Profiler::instance().reset();
  }
  void TearDown() override {
    obs::set_fault_spec("");
    obs::Profiler::instance().reset();
    obs::set_profiling_enabled(false);
  }
};

struct FulfillmentTally {
  int64_t values = 0;
  int64_t exceptions = 0;
  int64_t total() const { return values + exceptions; }
};

// After shutdown(), every accepted future must already be ready; classify
// each outcome. A pending future here means a lost request.
FulfillmentTally tally(std::vector<std::future<Tensor>>& futs) {
  FulfillmentTally t;
  for (auto& f : futs) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "future not fulfilled after drain (lost request)";
    try {
      f.get();
      ++t.values;
    } catch (const std::exception&) {
      ++t.exceptions;
    }
  }
  return t;
}

// ---- exactly-once under every fault site x overload policy ----

TEST_F(ServeChaos, ExactlyOnceUnderEveryFaultAndPolicy) {
  Rng rng(3);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  const struct {
    const char* spec;
    bool check_finite;
  } faults[] = {
      {"serve.exec_throw:*", false},
      {"serve.exec_nan:*", true},  // poisoned output, caught by check_finite
      {"serve.worker_stall:*", false},  // 25 ms sleep per batch: slow, not fatal
  };
  for (const auto& fault : faults) {
    for (const OverloadPolicy policy :
         {OverloadPolicy::Block, OverloadPolicy::Reject, OverloadPolicy::DropOldest}) {
      obs::set_fault_spec(fault.spec);
      ServerOptions opts;
      opts.workers = 1;
      opts.queue_capacity = 4;  // small: Reject/DropOldest actually engage
      opts.max_batch = 4;
      opts.max_wait_us = 500;
      opts.overload_policy = policy;
      opts.breaker_threshold = 0;  // isolate the policy from breaker routing
      opts.check_finite = fault.check_finite;
      InferenceServer server(exec, opts);

      std::vector<std::future<Tensor>> futs;
      int64_t rejected_at_submit = 0;
      for (int i = 0; i < 24; ++i) {
        try {
          futs.push_back(server.submit(random_sample(rng)));
        } catch (const Overloaded&) {
          ++rejected_at_submit;  // Reject policy refuses at the door
        }
      }
      server.shutdown();

      const FulfillmentTally t = tally(futs);
      const ServerStats st = server.stats();
      const std::string label =
          std::string(fault.spec) + " x " + serve::to_string(policy);
      EXPECT_EQ(st.submitted, static_cast<int64_t>(futs.size())) << label;
      EXPECT_EQ(t.total(), st.submitted) << label;
      EXPECT_EQ(st.completed + st.failed, st.submitted)
          << label << ": drain lost a request";
      EXPECT_EQ(t.values, st.completed) << label;
      EXPECT_EQ(t.exceptions, st.failed) << label;
      EXPECT_EQ(st.rejected_overload, rejected_at_submit) << label;
      if (policy != OverloadPolicy::Reject) EXPECT_EQ(rejected_at_submit, 0) << label;
    }
  }
}

TEST_F(ServeChaos, DrainLosesZeroMidFault) {
  // A fault striking in the middle of the stream while shutdown() races
  // the workers: everything must still be fulfilled.
  Rng rng(5);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.exec_throw:2");
  ServerOptions opts;
  opts.workers = 2;
  opts.max_batch = 4;
  opts.max_wait_us = 60'000'000;  // drain must flush without the timer
  opts.breaker_threshold = 0;
  InferenceServer server(exec, opts);
  std::vector<std::future<Tensor>> futs;
  for (int i = 0; i < 30; ++i) futs.push_back(server.submit(random_sample(rng)));
  server.shutdown();
  const FulfillmentTally t = tally(futs);
  const ServerStats st = server.stats();
  EXPECT_EQ(t.total(), 30);
  EXPECT_EQ(st.submitted, 30);
  EXPECT_EQ(st.completed + st.failed, 30);
  EXPECT_GE(st.failed, 1) << "the injected batch failure should be visible";
  EXPECT_EQ(st.exec_failures, 1);
}

// ---- deadlines ----

TEST_F(ServeChaos, DeadlineExpiresInQueueBeforeBatchAssembly) {
  Rng rng(7);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.worker_stall:*");  // 25 ms per batch keeps a backlog
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;  // one request per batch: the backlog really queues
  opts.max_wait_us = 100;
  InferenceServer server(exec, opts);

  // First request occupies the worker; the rest wait in-queue longer than
  // their 1 ms deadline and must be swept out as DeadlineExceeded.
  std::future<Tensor> head = server.submit(random_sample(rng), /*deadline_us=*/0);
  std::vector<std::future<Tensor>> doomed;
  for (int i = 0; i < 3; ++i) {
    doomed.push_back(server.submit(random_sample(rng), /*deadline_us=*/1000));
  }
  server.shutdown();

  EXPECT_NO_THROW(head.get());
  for (auto& f : doomed) EXPECT_THROW(f.get(), DeadlineExceeded);
  const ServerStats st = server.stats();
  EXPECT_EQ(st.deadline_exceeded, 3);
  EXPECT_EQ(st.failed, 3);
  EXPECT_EQ(st.completed, 1);
  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("serve.deadline_exceeded"), 3);
}

TEST_F(ServeChaos, DefaultDeadlineAppliesAndPerSubmitZeroOverrides) {
  Rng rng(9);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.worker_stall:*");
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;
  opts.max_wait_us = 100;
  opts.default_deadline_us = 1000;  // every request inherits 1 ms...
  InferenceServer server(exec, opts);
  EXPECT_EQ(server.default_deadline_us(), 1000);

  std::future<Tensor> head = server.submit(random_sample(rng), /*deadline_us=*/0);
  std::future<Tensor> inherited = server.submit(random_sample(rng));  // -1: default
  std::future<Tensor> exempt = server.submit(random_sample(rng), /*deadline_us=*/0);
  server.shutdown();

  EXPECT_NO_THROW(head.get());
  EXPECT_THROW(inherited.get(), DeadlineExceeded);
  EXPECT_NO_THROW(exempt.get());  // ...but an explicit 0 opts out
}

// ---- admission policies ----

TEST_F(ServeChaos, RejectPolicyFailsFastWithOverloaded) {
  Rng rng(11);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.worker_stall:*");
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.max_batch = 1;
  opts.max_wait_us = 100;
  opts.overload_policy = OverloadPolicy::Reject;
  InferenceServer server(exec, opts);

  std::vector<std::future<Tensor>> futs;
  int64_t rejected = 0;
  for (int i = 0; i < 12; ++i) {
    try {
      futs.push_back(server.submit(random_sample(rng)));
    } catch (const Overloaded&) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1) << "a stalled 2-deep queue must refuse a 12-burst";
  server.shutdown();
  tally(futs);
  const ServerStats st = server.stats();
  EXPECT_EQ(st.rejected_overload, rejected);
  EXPECT_EQ(st.shed, 0);
  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("serve.rejected_overload"), rejected);
}

TEST_F(ServeChaos, DropOldestShedsStalestAndDrainNeverSheds) {
  Rng rng(13);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.worker_stall:*");
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.max_batch = 1;
  opts.max_wait_us = 100;
  opts.overload_policy = OverloadPolicy::DropOldest;
  InferenceServer server(exec, opts);

  std::vector<std::future<Tensor>> futs;
  for (int i = 0; i < 10; ++i) futs.push_back(server.submit(random_sample(rng)));
  const int64_t shed_before_drain = server.stats().shed;
  EXPECT_GE(shed_before_drain, 1) << "a 10-burst into a stalled 2-deep queue must shed";
  server.shutdown();

  int64_t shed_seen = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    try {
      f.get();
    } catch (const Overloaded&) {
      ++shed_seen;
    }
  }
  const ServerStats st = server.stats();
  // Shed victims fail with Overloaded; everything still queued at
  // shutdown completes — the drain itself sheds nothing.
  EXPECT_EQ(st.shed, shed_before_drain);
  EXPECT_EQ(shed_seen, st.shed);
  EXPECT_EQ(st.completed, st.submitted - st.shed);
  EXPECT_EQ(st.failed, st.shed);
  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("serve.shed"), st.shed);
}

TEST_F(ServeChaos, PolicyNamesRoundTripAndEnvIsHonored) {
  for (const OverloadPolicy p :
       {OverloadPolicy::Block, OverloadPolicy::Reject, OverloadPolicy::DropOldest}) {
    EXPECT_EQ(serve::overload_policy_from_name(serve::to_string(p)), p);
  }
  EXPECT_THROW(serve::overload_policy_from_name("bogus"), std::invalid_argument);

  Rng rng(15);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  ::setenv("SB_SERVE_OVERLOAD", "reject", 1);
  ::setenv("SB_SERVE_DEADLINE_US", "2500", 1);
  {
    InferenceServer server(exec, ServerOptions{});
    EXPECT_EQ(server.overload_policy(), OverloadPolicy::Reject);
    EXPECT_EQ(server.default_deadline_us(), 2500);
  }
  {
    ServerOptions opts;
    opts.overload_policy = OverloadPolicy::DropOldest;  // explicit beats env
    opts.default_deadline_us = 0;
    InferenceServer server(exec, opts);
    EXPECT_EQ(server.overload_policy(), OverloadPolicy::DropOldest);
    EXPECT_EQ(server.default_deadline_us(), 0);
  }
  ::unsetenv("SB_SERVE_OVERLOAD");
  ::unsetenv("SB_SERVE_DEADLINE_US");
}

// ---- circuit breaker ----

TEST_F(ServeChaos, BreakerTripsRoutesToFallbackAndProbesClosed) {
  Rng rng(17);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  const serve::Executor fallback = serve::compile(*m, {8}, ExecMode::Dense);
  // Primary calls 1 and 2 throw; call 3 (the half-open probe) succeeds.
  obs::set_fault_spec("serve.exec_throw:1,serve.exec_throw:2");
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;
  opts.max_wait_us = 100;
  opts.breaker_threshold = 2;
  opts.breaker_probe_every = 2;
  opts.fallback = &fallback;
  InferenceServer server(exec, opts);

  // Sequential submits, one batch each:
  //   1: primary throws (1 failure)  -> fallback, degraded
  //   2: primary throws (2 failures) -> breaker trips OPEN -> fallback
  //   3: open, batch 1 of 2          -> fallback, no probe
  //   4: open, batch 2 of 2          -> half-open probe succeeds -> CLOSED
  //   5: closed                      -> primary
  for (int i = 0; i < 5; ++i) {
    EXPECT_NO_THROW(server.submit(random_sample(rng)).get()) << "request " << i + 1;
  }
  server.shutdown();

  const ServerStats st = server.stats();
  EXPECT_EQ(st.completed, 5);
  EXPECT_EQ(st.failed, 0) << "fallback must absorb every primary failure";
  EXPECT_EQ(st.breaker_trips, 1);
  EXPECT_EQ(st.exec_failures, 2);
  EXPECT_EQ(st.degraded_batches, 3);
  EXPECT_EQ(st.breaker_state, BreakerState::Closed);
  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("serve.degraded_batches"), 3);
  EXPECT_EQ(snap.gauges.at("serve.breaker_state"), 0.0);
}

TEST_F(ServeChaos, BreakerOpenWithoutFallbackFailsFast) {
  Rng rng(19);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.exec_throw:1");
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;
  opts.max_wait_us = 100;
  opts.breaker_threshold = 1;
  opts.breaker_probe_every = 1000;  // no probe within this test
  InferenceServer server(exec, opts);

  EXPECT_THROW(server.submit(random_sample(rng)).get(), std::runtime_error);
  EXPECT_THROW(server.submit(random_sample(rng)).get(), std::runtime_error);
  server.shutdown();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.breaker_trips, 1);
  EXPECT_EQ(st.failed, 2);
  // Request 2 never touched the primary: the breaker failed it fast.
  EXPECT_EQ(st.exec_failures, 1);
  EXPECT_EQ(st.breaker_state, BreakerState::Open);
}

TEST_F(ServeChaos, CheckFiniteTurnsNanIntoBreakerFailure) {
  Rng rng(21);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  const serve::Executor fallback = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.exec_nan:1");
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;
  opts.max_wait_us = 100;
  opts.breaker_threshold = 1;
  opts.check_finite = true;
  opts.fallback = &fallback;
  InferenceServer server(exec, opts);

  // The poisoned batch is caught by the finite check and retried on the
  // fallback — the caller still sees a (finite) value.
  Tensor y = server.submit(random_sample(rng)).get();
  for (const float v : y.flat()) EXPECT_TRUE(std::isfinite(v));
  server.shutdown();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.exec_failures, 1);
  EXPECT_EQ(st.degraded_batches, 1);
  EXPECT_EQ(st.breaker_trips, 1);
}

// ---- watchdog ----

TEST_F(ServeChaos, WatchdogFlagsStallFailsBatchAndRecovers) {
  obs::set_telemetry_hz(0);  // manual ticks only; no background thread
  obs::set_telemetry_enabled(true);
  obs::Telemetry::instance().reset();
  Rng rng(23);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.worker_stall:1");  // one 15 ms stall (3x timeout)
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;
  opts.max_wait_us = 100;
  opts.stall_timeout_ms = 5;
  InferenceServer server(exec, opts);

  // The stalled call outlives its latency budget, so the batch fails on
  // recovery even though forward() eventually returned.
  EXPECT_THROW(server.submit(random_sample(rng)).get(), std::runtime_error);
  // After recovery the worker is healthy again.
  EXPECT_NO_THROW(server.submit(random_sample(rng)).get());
  server.shutdown();

  const ServerStats st = server.stats();
  EXPECT_EQ(st.stalls, 1);
  EXPECT_EQ(st.failed, 1);
  EXPECT_EQ(st.completed, 1);
  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.counters.at("serve.stalls"), 1);
  // The degraded mark was lifted on recovery; the serve block persists.
  const std::string status = obs::Telemetry::instance().status_json();
  EXPECT_EQ(status.find("\"degraded\":true"), std::string::npos) << status;
  EXPECT_NE(status.find("\"serve\":"), std::string::npos) << status;
  EXPECT_NE(status.find("\"stalls\":1"), std::string::npos) << status;
  obs::Telemetry::instance().reset();
  obs::set_telemetry_enabled(false);
}

TEST_F(ServeChaos, DegradedHeartbeatSetWhileStalled) {
  obs::set_telemetry_hz(0);
  obs::set_telemetry_enabled(true);
  obs::Telemetry::instance().reset();
  obs::status_set_degraded("serve: worker stalled in executor");
  std::string status = obs::Telemetry::instance().status_json();
  EXPECT_NE(status.find("\"degraded\":true"), std::string::npos) << status;
  EXPECT_NE(status.find("worker stalled"), std::string::npos) << status;
  obs::status_set_degraded("");
  status = obs::Telemetry::instance().status_json();
  EXPECT_EQ(status.find("\"degraded\":true"), std::string::npos) << status;
  obs::Telemetry::instance().reset();
  obs::set_telemetry_enabled(false);
}

// ---- observability regressions ----

TEST_F(ServeChaos, QueueDepthGaugeReturnsToZeroAfterDrain) {
  Rng rng(25);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.worker_stall:*");  // backlog builds while stalled
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 2;
  opts.max_wait_us = 100;
  InferenceServer server(exec, opts);
  std::vector<std::future<Tensor>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(server.submit(random_sample(rng)));
  {
    // The last submit published the post-enqueue depth; with the worker
    // parked in a 25 ms stall, a backlog must be visible.
    const auto snap = obs::Profiler::instance().snapshot();
    EXPECT_GT(snap.gauges.at("serve.queue_depth"), 0.0);
  }
  server.shutdown();
  tally(futs);
  // Regression: the gauge used to be written only in submit(), so it
  // froze at the last enqueue depth forever. Dequeue paths publish too
  // now, and a drained server must read 0.
  const auto snap = obs::Profiler::instance().snapshot();
  EXPECT_EQ(snap.gauges.at("serve.queue_depth"), 0.0);
}

TEST_F(ServeChaos, FailedRequestsLandInRequestsCounterAndLatencyHistogram) {
  Rng rng(27);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.exec_throw:*");
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 4;
  opts.max_wait_us = 60'000'000;  // one drain-flushed batch of 4
  opts.breaker_threshold = 0;
  InferenceServer server(exec, opts);
  std::vector<std::future<Tensor>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(server.submit(random_sample(rng)));
  server.shutdown();
  const FulfillmentTally t = tally(futs);
  EXPECT_EQ(t.exceptions, 4);
  const auto snap = obs::Profiler::instance().snapshot();
  // Exception fulfillments count as requests and contribute latency
  // samples — p99 under faults stays honest.
  EXPECT_EQ(snap.counters.at("serve.requests"), 4);
  EXPECT_EQ(snap.histograms.at("serve.latency_us").count, 4);
}

// ---- submit() racing shutdown() ----

TEST_F(ServeChaos, BlockedSubmitWakesAndRejectsOnShutdown) {
  Rng rng(29);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  obs::set_fault_spec("serve.worker_stall:*");  // park the worker: queue stays full
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.max_batch = 1;
  opts.max_wait_us = 100;
  opts.overload_policy = OverloadPolicy::Block;
  InferenceServer server(exec, opts);

  std::vector<std::future<Tensor>> futs;
  futs.push_back(server.submit(random_sample(rng)));  // occupies the worker
  futs.push_back(server.submit(random_sample(rng)));  // fills the queue
  std::atomic<bool> woke{false}, overload_typed{false};
  std::thread blocked([&] {
    try {
      // Queue full + Block: this parks on queue_has_space_ until
      // shutdown() wakes it, which must reject rather than hang or shed.
      futs.push_back(server.submit(random_sample(rng)));
    } catch (const Overloaded&) {
      overload_typed.store(true);
      woke.store(true);
    } catch (const std::runtime_error&) {
      woke.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // let it block
  server.shutdown();
  blocked.join();
  EXPECT_TRUE(woke.load()) << "blocked submit never returned after shutdown";
  EXPECT_FALSE(overload_typed.load()) << "shutdown rejection must not read as overload";

  tally(futs);
  const ServerStats st = server.stats();
  EXPECT_EQ(st.rejected, 1);
  EXPECT_EQ(st.completed + st.failed, st.submitted) << "drain lost a request";
  EXPECT_EQ(st.shed, 0);
}

TEST_F(ServeChaos, ShutdownRejectsLateSubmitsWithoutShedding) {
  Rng rng(31);
  ModelPtr m = tiny_model(rng);
  const serve::Executor exec = serve::compile(*m, {8}, ExecMode::Dense);
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.overload_policy = OverloadPolicy::DropOldest;
  InferenceServer server(exec, opts);
  server.shutdown();
  EXPECT_THROW(server.submit(random_sample(rng)), std::runtime_error);
  const ServerStats st = server.stats();
  EXPECT_EQ(st.rejected, 1);
  EXPECT_EQ(st.shed, 0) << "a draining server must reject, never shed";
}

}  // namespace
}  // namespace shrinkbench
