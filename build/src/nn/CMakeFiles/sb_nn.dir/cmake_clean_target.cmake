file(REMOVE_RECURSE
  "libsb_nn.a"
)
