file(REMOVE_RECURSE
  "CMakeFiles/sb_nn.dir/activations.cpp.o"
  "CMakeFiles/sb_nn.dir/activations.cpp.o.d"
  "CMakeFiles/sb_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/sb_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/sb_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/sb_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/sb_nn.dir/conv2d.cpp.o"
  "CMakeFiles/sb_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/sb_nn.dir/dropout.cpp.o"
  "CMakeFiles/sb_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/sb_nn.dir/init.cpp.o"
  "CMakeFiles/sb_nn.dir/init.cpp.o.d"
  "CMakeFiles/sb_nn.dir/layer.cpp.o"
  "CMakeFiles/sb_nn.dir/layer.cpp.o.d"
  "CMakeFiles/sb_nn.dir/linear.cpp.o"
  "CMakeFiles/sb_nn.dir/linear.cpp.o.d"
  "CMakeFiles/sb_nn.dir/loss.cpp.o"
  "CMakeFiles/sb_nn.dir/loss.cpp.o.d"
  "CMakeFiles/sb_nn.dir/optimizer.cpp.o"
  "CMakeFiles/sb_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/sb_nn.dir/pool.cpp.o"
  "CMakeFiles/sb_nn.dir/pool.cpp.o.d"
  "CMakeFiles/sb_nn.dir/residual.cpp.o"
  "CMakeFiles/sb_nn.dir/residual.cpp.o.d"
  "CMakeFiles/sb_nn.dir/sparse.cpp.o"
  "CMakeFiles/sb_nn.dir/sparse.cpp.o.d"
  "libsb_nn.a"
  "libsb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
