# Empty compiler generated dependencies file for sb_nn.
# This may be replaced when dependencies are built.
