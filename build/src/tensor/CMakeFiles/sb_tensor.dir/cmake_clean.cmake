file(REMOVE_RECURSE
  "CMakeFiles/sb_tensor.dir/gemm.cpp.o"
  "CMakeFiles/sb_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/sb_tensor.dir/im2col.cpp.o"
  "CMakeFiles/sb_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/sb_tensor.dir/ops.cpp.o"
  "CMakeFiles/sb_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/sb_tensor.dir/rng.cpp.o"
  "CMakeFiles/sb_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/sb_tensor.dir/serialize.cpp.o"
  "CMakeFiles/sb_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/sb_tensor.dir/tensor.cpp.o"
  "CMakeFiles/sb_tensor.dir/tensor.cpp.o.d"
  "libsb_tensor.a"
  "libsb_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
