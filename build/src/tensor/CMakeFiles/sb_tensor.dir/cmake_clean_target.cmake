file(REMOVE_RECURSE
  "libsb_tensor.a"
)
