# Empty compiler generated dependencies file for sb_tensor.
# This may be replaced when dependencies are built.
