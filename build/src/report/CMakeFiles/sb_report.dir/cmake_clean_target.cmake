file(REMOVE_RECURSE
  "libsb_report.a"
)
