# Empty compiler generated dependencies file for sb_report.
# This may be replaced when dependencies are built.
