file(REMOVE_RECURSE
  "CMakeFiles/sb_report.dir/chart.cpp.o"
  "CMakeFiles/sb_report.dir/chart.cpp.o.d"
  "CMakeFiles/sb_report.dir/table.cpp.o"
  "CMakeFiles/sb_report.dir/table.cpp.o.d"
  "libsb_report.a"
  "libsb_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
