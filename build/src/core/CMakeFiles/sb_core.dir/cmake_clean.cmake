file(REMOVE_RECURSE
  "CMakeFiles/sb_core.dir/activation_stats.cpp.o"
  "CMakeFiles/sb_core.dir/activation_stats.cpp.o.d"
  "CMakeFiles/sb_core.dir/allocation.cpp.o"
  "CMakeFiles/sb_core.dir/allocation.cpp.o.d"
  "CMakeFiles/sb_core.dir/checklist.cpp.o"
  "CMakeFiles/sb_core.dir/checklist.cpp.o.d"
  "CMakeFiles/sb_core.dir/experiment.cpp.o"
  "CMakeFiles/sb_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sb_core.dir/pretrained.cpp.o"
  "CMakeFiles/sb_core.dir/pretrained.cpp.o.d"
  "CMakeFiles/sb_core.dir/pruner.cpp.o"
  "CMakeFiles/sb_core.dir/pruner.cpp.o.d"
  "CMakeFiles/sb_core.dir/schedule.cpp.o"
  "CMakeFiles/sb_core.dir/schedule.cpp.o.d"
  "CMakeFiles/sb_core.dir/scoring.cpp.o"
  "CMakeFiles/sb_core.dir/scoring.cpp.o.d"
  "CMakeFiles/sb_core.dir/strategy.cpp.o"
  "CMakeFiles/sb_core.dir/strategy.cpp.o.d"
  "CMakeFiles/sb_core.dir/train.cpp.o"
  "CMakeFiles/sb_core.dir/train.cpp.o.d"
  "libsb_core.a"
  "libsb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
