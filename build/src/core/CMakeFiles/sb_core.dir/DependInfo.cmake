
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activation_stats.cpp" "src/core/CMakeFiles/sb_core.dir/activation_stats.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/activation_stats.cpp.o.d"
  "/root/repo/src/core/allocation.cpp" "src/core/CMakeFiles/sb_core.dir/allocation.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/allocation.cpp.o.d"
  "/root/repo/src/core/checklist.cpp" "src/core/CMakeFiles/sb_core.dir/checklist.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/checklist.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/sb_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/pretrained.cpp" "src/core/CMakeFiles/sb_core.dir/pretrained.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/pretrained.cpp.o.d"
  "/root/repo/src/core/pruner.cpp" "src/core/CMakeFiles/sb_core.dir/pruner.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/pruner.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/sb_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/scoring.cpp" "src/core/CMakeFiles/sb_core.dir/scoring.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/scoring.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/sb_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/strategy.cpp.o.d"
  "/root/repo/src/core/train.cpp" "src/core/CMakeFiles/sb_core.dir/train.cpp.o" "gcc" "src/core/CMakeFiles/sb_core.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/sb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sb_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
