file(REMOVE_RECURSE
  "libsb_models.a"
)
