file(REMOVE_RECURSE
  "CMakeFiles/sb_models.dir/zoo.cpp.o"
  "CMakeFiles/sb_models.dir/zoo.cpp.o.d"
  "libsb_models.a"
  "libsb_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
