# Empty compiler generated dependencies file for sb_models.
# This may be replaced when dependencies are built.
