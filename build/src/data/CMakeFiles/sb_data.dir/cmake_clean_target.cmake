file(REMOVE_RECURSE
  "libsb_data.a"
)
