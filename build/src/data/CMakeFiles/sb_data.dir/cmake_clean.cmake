file(REMOVE_RECURSE
  "CMakeFiles/sb_data.dir/loader.cpp.o"
  "CMakeFiles/sb_data.dir/loader.cpp.o.d"
  "CMakeFiles/sb_data.dir/synthetic.cpp.o"
  "CMakeFiles/sb_data.dir/synthetic.cpp.o.d"
  "libsb_data.a"
  "libsb_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
