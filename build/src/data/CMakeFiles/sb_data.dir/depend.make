# Empty dependencies file for sb_data.
# This may be replaced when dependencies are built.
