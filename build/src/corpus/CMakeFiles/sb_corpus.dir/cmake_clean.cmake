file(REMOVE_RECURSE
  "CMakeFiles/sb_corpus.dir/analysis.cpp.o"
  "CMakeFiles/sb_corpus.dir/analysis.cpp.o.d"
  "CMakeFiles/sb_corpus.dir/corpus.cpp.o"
  "CMakeFiles/sb_corpus.dir/corpus.cpp.o.d"
  "CMakeFiles/sb_corpus.dir/families.cpp.o"
  "CMakeFiles/sb_corpus.dir/families.cpp.o.d"
  "CMakeFiles/sb_corpus.dir/units.cpp.o"
  "CMakeFiles/sb_corpus.dir/units.cpp.o.d"
  "libsb_corpus.a"
  "libsb_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
