file(REMOVE_RECURSE
  "libsb_corpus.a"
)
