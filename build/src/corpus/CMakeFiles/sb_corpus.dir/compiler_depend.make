# Empty compiler generated dependencies file for sb_corpus.
# This may be replaced when dependencies are built.
