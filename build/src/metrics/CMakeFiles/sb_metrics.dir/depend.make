# Empty dependencies file for sb_metrics.
# This may be replaced when dependencies are built.
