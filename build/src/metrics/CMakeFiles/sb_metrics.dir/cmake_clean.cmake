file(REMOVE_RECURSE
  "CMakeFiles/sb_metrics.dir/metrics.cpp.o"
  "CMakeFiles/sb_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/sb_metrics.dir/storage.cpp.o"
  "CMakeFiles/sb_metrics.dir/storage.cpp.o.d"
  "CMakeFiles/sb_metrics.dir/summary.cpp.o"
  "CMakeFiles/sb_metrics.dir/summary.cpp.o.d"
  "libsb_metrics.a"
  "libsb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
