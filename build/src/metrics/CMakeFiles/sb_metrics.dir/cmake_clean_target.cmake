file(REMOVE_RECURSE
  "libsb_metrics.a"
)
