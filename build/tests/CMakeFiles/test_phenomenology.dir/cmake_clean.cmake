file(REMOVE_RECURSE
  "CMakeFiles/test_phenomenology.dir/test_phenomenology.cpp.o"
  "CMakeFiles/test_phenomenology.dir/test_phenomenology.cpp.o.d"
  "test_phenomenology"
  "test_phenomenology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phenomenology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
