# Empty compiler generated dependencies file for test_phenomenology.
# This may be replaced when dependencies are built.
