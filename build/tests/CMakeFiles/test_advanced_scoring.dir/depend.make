# Empty dependencies file for test_advanced_scoring.
# This may be replaced when dependencies are built.
