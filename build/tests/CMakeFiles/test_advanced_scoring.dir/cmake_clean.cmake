file(REMOVE_RECURSE
  "CMakeFiles/test_advanced_scoring.dir/test_advanced_scoring.cpp.o"
  "CMakeFiles/test_advanced_scoring.dir/test_advanced_scoring.cpp.o.d"
  "test_advanced_scoring"
  "test_advanced_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advanced_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
