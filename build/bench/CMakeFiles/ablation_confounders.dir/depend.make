# Empty dependencies file for ablation_confounders.
# This may be replaced when dependencies are built.
