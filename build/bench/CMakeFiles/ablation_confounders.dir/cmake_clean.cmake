file(REMOVE_RECURSE
  "CMakeFiles/ablation_confounders.dir/ablation_confounders.cpp.o"
  "CMakeFiles/ablation_confounders.dir/ablation_confounders.cpp.o.d"
  "ablation_confounders"
  "ablation_confounders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_confounders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
