
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_initial_model.cpp" "bench/CMakeFiles/fig8_initial_model.dir/fig8_initial_model.cpp.o" "gcc" "bench/CMakeFiles/fig8_initial_model.dir/fig8_initial_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/sb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/sb_report.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/sb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sb_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
