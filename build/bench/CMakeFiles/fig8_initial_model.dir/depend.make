# Empty dependencies file for fig8_initial_model.
# This may be replaced when dependencies are built.
