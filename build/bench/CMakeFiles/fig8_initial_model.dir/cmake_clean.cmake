file(REMOVE_RECURSE
  "CMakeFiles/fig8_initial_model.dir/fig8_initial_model.cpp.o"
  "CMakeFiles/fig8_initial_model.dir/fig8_initial_model.cpp.o.d"
  "fig8_initial_model"
  "fig8_initial_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_initial_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
