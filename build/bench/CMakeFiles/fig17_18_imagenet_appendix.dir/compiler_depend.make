# Empty compiler generated dependencies file for fig17_18_imagenet_appendix.
# This may be replaced when dependencies are built.
