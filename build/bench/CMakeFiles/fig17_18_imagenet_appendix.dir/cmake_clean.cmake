file(REMOVE_RECURSE
  "CMakeFiles/fig17_18_imagenet_appendix.dir/fig17_18_imagenet_appendix.cpp.o"
  "CMakeFiles/fig17_18_imagenet_appendix.dir/fig17_18_imagenet_appendix.cpp.o.d"
  "fig17_18_imagenet_appendix"
  "fig17_18_imagenet_appendix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_18_imagenet_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
