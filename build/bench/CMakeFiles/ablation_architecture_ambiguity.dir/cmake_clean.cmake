file(REMOVE_RECURSE
  "CMakeFiles/ablation_architecture_ambiguity.dir/ablation_architecture_ambiguity.cpp.o"
  "CMakeFiles/ablation_architecture_ambiguity.dir/ablation_architecture_ambiguity.cpp.o.d"
  "ablation_architecture_ambiguity"
  "ablation_architecture_ambiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_architecture_ambiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
