# Empty dependencies file for ablation_architecture_ambiguity.
# This may be replaced when dependencies are built.
