# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_metrics_not_interchangeable.
