file(REMOVE_RECURSE
  "CMakeFiles/fig6_metrics_not_interchangeable.dir/fig6_metrics_not_interchangeable.cpp.o"
  "CMakeFiles/fig6_metrics_not_interchangeable.dir/fig6_metrics_not_interchangeable.cpp.o.d"
  "fig6_metrics_not_interchangeable"
  "fig6_metrics_not_interchangeable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_metrics_not_interchangeable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
