# Empty dependencies file for fig6_metrics_not_interchangeable.
# This may be replaced when dependencies are built.
