file(REMOVE_RECURSE
  "CMakeFiles/fig7_across_models.dir/fig7_across_models.cpp.o"
  "CMakeFiles/fig7_across_models.dir/fig7_across_models.cpp.o.d"
  "fig7_across_models"
  "fig7_across_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_across_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
