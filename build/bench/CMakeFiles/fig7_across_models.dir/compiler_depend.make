# Empty compiler generated dependencies file for fig7_across_models.
# This may be replaced when dependencies are built.
