file(REMOVE_RECURSE
  "CMakeFiles/fig4_result_counts.dir/fig4_result_counts.cpp.o"
  "CMakeFiles/fig4_result_counts.dir/fig4_result_counts.cpp.o.d"
  "fig4_result_counts"
  "fig4_result_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_result_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
