# Empty compiler generated dependencies file for fig4_result_counts.
# This may be replaced when dependencies are built.
