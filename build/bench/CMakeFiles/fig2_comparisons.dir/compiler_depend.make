# Empty compiler generated dependencies file for fig2_comparisons.
# This may be replaced when dependencies are built.
