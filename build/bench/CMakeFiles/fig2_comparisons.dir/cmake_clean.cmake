file(REMOVE_RECURSE
  "CMakeFiles/fig2_comparisons.dir/fig2_comparisons.cpp.o"
  "CMakeFiles/fig2_comparisons.dir/fig2_comparisons.cpp.o.d"
  "fig2_comparisons"
  "fig2_comparisons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_comparisons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
