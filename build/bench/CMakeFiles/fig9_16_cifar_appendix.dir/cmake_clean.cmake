file(REMOVE_RECURSE
  "CMakeFiles/fig9_16_cifar_appendix.dir/fig9_16_cifar_appendix.cpp.o"
  "CMakeFiles/fig9_16_cifar_appendix.dir/fig9_16_cifar_appendix.cpp.o.d"
  "fig9_16_cifar_appendix"
  "fig9_16_cifar_appendix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_16_cifar_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
