# Empty dependencies file for fig9_16_cifar_appendix.
# This may be replaced when dependencies are built.
