file(REMOVE_RECURSE
  "CMakeFiles/fig3_fragmentation.dir/fig3_fragmentation.cpp.o"
  "CMakeFiles/fig3_fragmentation.dir/fig3_fragmentation.cpp.o.d"
  "fig3_fragmentation"
  "fig3_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
