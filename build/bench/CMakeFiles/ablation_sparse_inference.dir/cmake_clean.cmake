file(REMOVE_RECURSE
  "CMakeFiles/ablation_sparse_inference.dir/ablation_sparse_inference.cpp.o"
  "CMakeFiles/ablation_sparse_inference.dir/ablation_sparse_inference.cpp.o.d"
  "ablation_sparse_inference"
  "ablation_sparse_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparse_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
