# Empty dependencies file for ablation_sparse_inference.
# This may be replaced when dependencies are built.
