# Empty compiler generated dependencies file for fig5_variability.
# This may be replaced when dependencies are built.
