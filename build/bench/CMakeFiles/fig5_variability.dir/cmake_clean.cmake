file(REMOVE_RECURSE
  "CMakeFiles/fig5_variability.dir/fig5_variability.cpp.o"
  "CMakeFiles/fig5_variability.dir/fig5_variability.cpp.o.d"
  "fig5_variability"
  "fig5_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
