# Empty dependencies file for table1_pairs.
# This may be replaced when dependencies are built.
