# Empty dependencies file for custom_scoring.
# This may be replaced when dependencies are built.
