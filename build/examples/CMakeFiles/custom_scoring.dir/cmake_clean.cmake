file(REMOVE_RECURSE
  "CMakeFiles/custom_scoring.dir/custom_scoring.cpp.o"
  "CMakeFiles/custom_scoring.dir/custom_scoring.cpp.o.d"
  "custom_scoring"
  "custom_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
