# Empty compiler generated dependencies file for iterative_lottery.
# This may be replaced when dependencies are built.
