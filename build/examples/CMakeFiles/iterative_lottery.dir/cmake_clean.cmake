file(REMOVE_RECURSE
  "CMakeFiles/iterative_lottery.dir/iterative_lottery.cpp.o"
  "CMakeFiles/iterative_lottery.dir/iterative_lottery.cpp.o.d"
  "iterative_lottery"
  "iterative_lottery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_lottery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
