# Empty dependencies file for structured_vs_unstructured.
# This may be replaced when dependencies are built.
