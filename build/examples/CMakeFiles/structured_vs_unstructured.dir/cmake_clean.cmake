file(REMOVE_RECURSE
  "CMakeFiles/structured_vs_unstructured.dir/structured_vs_unstructured.cpp.o"
  "CMakeFiles/structured_vs_unstructured.dir/structured_vs_unstructured.cpp.o.d"
  "structured_vs_unstructured"
  "structured_vs_unstructured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_vs_unstructured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
