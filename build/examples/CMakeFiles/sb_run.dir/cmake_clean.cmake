file(REMOVE_RECURSE
  "CMakeFiles/sb_run.dir/sb_run.cpp.o"
  "CMakeFiles/sb_run.dir/sb_run.cpp.o.d"
  "sb_run"
  "sb_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
