# Empty compiler generated dependencies file for sb_run.
# This may be replaced when dependencies are built.
